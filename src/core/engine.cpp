#include "src/core/engine.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <set>
#include <stdexcept>
#include <unordered_map>

#include "src/core/coding.hpp"
#include "src/core/discovery.hpp"
#include "src/core/download.hpp"
#include "src/core/download_planner.hpp"
#include "src/obs/events.hpp"
#include "src/trace/trace_stats.hpp"
#include "src/util/logging.hpp"
#include "src/util/string_util.hpp"

namespace hdtn::core {

// Private per-engine caches keyed by publish epoch (the alive-metadata set
// only changes at publish instants, since TTLs are whole days anchored at
// the 2 PM publish time).
struct EngineCaches {
  SimTime lastPublishAt = -1;
  std::vector<const Metadata*> topPopular;
  /// Per node: query text -> publish time at which it was last searched.
  std::vector<std::unordered_map<std::string, SimTime>> searchCache;
};

// Coded-mode engine state: the dedicated coefficient-seed stream plus one
// incremental decoder per (receiver, in-flight generation). Ordered maps so
// checkpoint bytes are deterministic.
struct CodedEngineState {
  Rng rng{0};
  std::map<NodeId, std::map<FileId, coding::GenerationDecoder>> decoders;
};

namespace {

// Forged metadata gets file ids far above any catalog id so the two spaces
// never collide; catalog lookups on forged ids simply miss.
constexpr std::uint32_t kForgedIdBase = 1u << 24;

EngineCaches& caches(std::unique_ptr<EngineCaches>& holder,
                     std::size_t nodeCount) {
  if (!holder) {
    holder = std::make_unique<EngineCaches>();
    holder->searchCache.resize(nodeCount);
  }
  return *holder;
}
}  // namespace

std::vector<std::string> EngineParams::validate() const {
  std::vector<std::string> errors;
  const auto fraction = [&errors](const char* name, double v) {
    if (!(v >= 0.0 && v <= 1.0)) {
      errors.push_back(std::string(name) + " must be in [0, 1], got " +
                       std::to_string(v));
    }
  };
  fraction("internetAccessFraction", internetAccessFraction);
  fraction("freeRiderFraction", freeRiderFraction);
  fraction("forgerFraction", forgerFraction);
  fraction("accessMetadataSyncFraction", accessMetadataSyncFraction);
  // Free-riders and forgers are both carved out of the *non-access*
  // population (a forger must transmit, so it cannot also free-ride):
  // their fractions must jointly fit into that population, independent of
  // internetAccessFraction. Checked only when each is individually valid so
  // out-of-range values keep their own message.
  if (freeRiderFraction >= 0.0 && freeRiderFraction <= 1.0 &&
      forgerFraction >= 0.0 && forgerFraction <= 1.0 &&
      freeRiderFraction + forgerFraction > 1.0) {
    errors.push_back(
        "freeRiderFraction + forgerFraction must not exceed 1 (both are "
        "fractions of the non-access population), got " +
        std::to_string(freeRiderFraction) + " + " +
        std::to_string(forgerFraction));
  }
  if (newFilesPerDay < 1) {
    errors.push_back("newFilesPerDay must be >= 1, got " +
                     std::to_string(newFilesPerDay));
  }
  if (fileTtlDays < 1) {
    errors.push_back("fileTtlDays must be >= 1, got " +
                     std::to_string(fileTtlDays));
  }
  if (metadataPerContact < 1) {
    errors.push_back("metadataPerContact must be a positive budget, got " +
                     std::to_string(metadataPerContact));
  }
  if (filesPerContact < 1) {
    errors.push_back("filesPerContact must be a positive budget, got " +
                     std::to_string(filesPerContact));
  }
  if (piecesPerFile < 1) {
    errors.push_back("piecesPerFile must be >= 1, got " +
                     std::to_string(piecesPerFile));
  }
  if (pieceSizeBytes < 1) {
    errors.push_back("pieceSizeBytes must be >= 1, got " +
                     std::to_string(pieceSizeBytes));
  }
  if (forgeriesPerForgerPerDay < 0) {
    errors.push_back("forgeriesPerForgerPerDay must be >= 0, got " +
                     std::to_string(forgeriesPerForgerPerDay));
  }
  if (frequentContactPeriod <= 0) {
    errors.push_back("frequentContactPeriod must be positive seconds, got " +
                     std::to_string(frequentContactPeriod));
  }
  if (scaleBudgetsWithDuration && referenceContactDuration <= 0) {
    errors.push_back(
        "referenceContactDuration must be positive when "
        "scaleBudgetsWithDuration is set, got " +
        std::to_string(referenceContactDuration));
  }
  for (std::string& error : faults.validate()) {
    errors.push_back("faults." + std::move(error));
  }
  for (std::string& error : recovery.validate()) {
    errors.push_back("recovery." + std::move(error));
  }
  for (std::string& error : coded.validate()) {
    errors.push_back("coded." + std::move(error));
  }
  for (std::string& error : adversary.validate()) {
    errors.push_back("adversary." + std::move(error));
  }
  for (std::string& error : reputation.validate()) {
    errors.push_back("reputation." + std::move(error));
  }
  return errors;
}

Engine::Engine(const trace::ContactTrace& trace, EngineParams params)
    : trace_(trace), params_(params), rng_(params.seed) {
  const std::vector<std::string> errors = params_.validate();
  if (!errors.empty()) {
    throw std::invalid_argument("invalid EngineParams: " +
                                join(errors, "; "));
  }
  // Only an enabled fault configuration forks the engine stream (fork
  // consumes a draw): all-zero fault rates leave every subsequent draw —
  // node shuffling, publications, queries — byte-identical to a run
  // without fault support.
  if (params_.faults.enabled()) {
    faults_ = std::make_unique<faults::FaultPlan>(
        params_.faults, rng_.fork(0xfa01), trace_.nodeCount(),
        trace_.endTime());
  }
  // The adversary stream follows the same discipline: forked only when the
  // adversary is enabled, so clean runs stay byte-identical. Byzantine
  // membership is installed by setupNodes() from the role shuffle.
  if (params_.adversary.enabled()) {
    adversary_ = std::make_unique<faults::AdversaryPlan>(params_.adversary,
                                                         rng_.fork(0xbad1));
  }
  // The defense tracker draws no randomness; still gated so disabled runs
  // carry no state at all.
  if (params_.reputation.enabled()) {
    reputation_ = std::make_unique<ReputationTracker>(params_.reputation);
  }
  // Recovery draws no randomness of its own (retransmission re-draws reuse
  // the fault channel streams), so constructing it perturbs nothing; still
  // gated so disabled runs carry no state at all.
  if (params_.recovery.enabled()) {
    recovery_ =
        std::make_unique<RecoveryState>(params_.recovery.repairQueueLimit);
  }
  // The coefficient-seed stream is forked only in coded mode (a fork
  // consumes a draw), so the named-piece modes stay byte-identical to
  // builds without coding support.
  if (params_.downloadMode == DownloadMode::kCoded) {
    coded_ = std::make_unique<CodedEngineState>();
    coded_->rng = rng_.fork(0xc0de);
  }
  planner_ =
      downloadModeInfo(params_.downloadMode, params_.protocol.scheduling)
          .planner;
  setupNodes();
}

Engine::~Engine() = default;

void Engine::setObserver(obs::EngineObserver* observer) {
  observer_ = observer;
  internet_.setObserver(observer);
}

void Engine::emit(const obs::SimEvent& event) {
  if (observer_ != nullptr) observer_->onEvent(event);
}

void Engine::setupNodes() {
  const std::size_t n = trace_.nodeCount();
  std::vector<NodeId> ids = trace_.allNodes();
  rng_.shuffle(ids);

  std::set<NodeId> access;
  std::set<NodeId> freeRiders;
  if (!params_.explicitAccessNodes.empty() ||
      !params_.explicitFreeRiders.empty()) {
    access.insert(params_.explicitAccessNodes.begin(),
                  params_.explicitAccessNodes.end());
    freeRiders.insert(params_.explicitFreeRiders.begin(),
                      params_.explicitFreeRiders.end());
  } else {
    const auto accessCount = static_cast<std::size_t>(std::llround(
        params_.internetAccessFraction * static_cast<double>(n)));
    access.insert(ids.begin(), ids.begin() + static_cast<std::ptrdiff_t>(
                                                 std::min(accessCount, n)));
    const std::size_t nonAccess = n - access.size();
    const auto freeRiderCount = static_cast<std::size_t>(std::llround(
        params_.freeRiderFraction * static_cast<double>(nonAccess)));
    // Free-riders are drawn from the non-access segment of the shuffle.
    for (std::size_t i = access.size();
         i < ids.size() && freeRiders.size() < freeRiderCount; ++i) {
      freeRiders.insert(ids[i]);
    }
  }

  // Forgers are drawn from non-access, non-free-riding nodes (they must
  // transmit to spread their fakes).
  std::set<NodeId> forgers;
  const auto forgerCount = static_cast<std::size_t>(std::llround(
      params_.forgerFraction * static_cast<double>(n - access.size())));
  for (std::size_t i = access.size();
       i < ids.size() && forgers.size() < forgerCount; ++i) {
    if (!freeRiders.contains(ids[i])) forgers.insert(ids[i]);
  }

  // Byzantine nodes come from the same shuffled order, skipping the roles
  // already assigned, so the selection consumes no extra RNG draws and
  // composes with (instead of overlapping) the paper's misbehavior models.
  if (adversary_) {
    std::vector<NodeId> byzantine;
    const auto byzantineCount = static_cast<std::size_t>(
        std::llround(params_.adversary.byzantineFraction *
                     static_cast<double>(n - access.size())));
    for (std::size_t i = access.size();
         i < ids.size() && byzantine.size() < byzantineCount; ++i) {
      if (freeRiders.contains(ids[i]) || forgers.contains(ids[i])) continue;
      byzantine.push_back(ids[i]);
    }
    adversary_->setByzantine(byzantine, n);
  }

  const auto frequentLists =
      trace::frequentContactLists(trace_, params_.frequentContactPeriod);

  nodes_.reset(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const NodeId id(i);
    NodeOptions options;
    options.internetAccess = access.contains(id);
    options.freeRider = freeRiders.contains(id);
    options.pieceCapacity = params_.nodePieceCapacity;
    options.metadataCapacity = params_.nodeMetadataCapacity;
    options.forger = forgers.contains(id);
    Node& node = nodes_.emplace(id, options);
    if (params_.nodeMetadataCapacity > 0) {
      Node* raw = &node;
      raw->metadata().setEvictionHook([this, raw](const Metadata& md) {
        ++totals_.metadataEvictions;
        if (observer_ != nullptr) {
          obs::SimEvent event;
          event.type = obs::SimEventType::kMetadataEvicted;
          event.time = sim_.now();
          event.node = raw->id();
          event.file = md.file;
          event.value = md.popularity;
          emit(event);
        }
      });
    }
    if (params_.verifyMetadata && !options.forger) {
      node.setMetadataVerifier([this](const Metadata& md) {
        const bool genuine = internet_.registry().verify(md);
        if (!genuine) ++totals_.forgeriesRejected;
        return genuine;
      });
    }
    if (i < frequentLists.size()) {
      node.setFrequentContacts(frequentLists[i]);
    }
    node.setCooperativeStateTtl(
        static_cast<Duration>(params_.fileTtlDays) * kDay);
  }
}

const Node& Engine::node(NodeId id) const { return nodes_[id]; }

Node& Engine::node(NodeId id) { return nodes_[id]; }

std::vector<NodeId> Engine::accessNodes() const { return nodes_.accessIds(); }

void Engine::ensureScheduled() {
  if (scheduled_) return;
  scheduled_ = true;
  const SimTime end = std::max(trace_.endTime(), publishHorizon_);
  const std::size_t publishCount =
      end > kDailyPublishHour
          ? static_cast<std::size_t>((end - kDailyPublishHour + kDay - 1) /
                                     kDay)
          : 0;
  sim_.reserve(publishCount + trace_.contacts().size());
  schedulePublications();
  for (const trace::Contact& contact : trace_.contacts()) {
    sim_.at(contact.start, [this, &contact] { processContact(contact); });
  }
  scheduleChurnEvents();
}

void Engine::schedulePublications() {
  // Daily 2 PM publications across the run span (publishes are scheduled
  // first so that same-instant contacts observe the day's files).
  const SimTime end = std::max(trace_.endTime(), publishHorizon_);
  for (SimTime t = kDailyPublishHour; t < end; t += kDay) {
    sim_.at(t, [this, t] { publishDay(t); });
  }
}

void Engine::scheduleChurnEvents() {
  // Churn transitions are observational events (isDown() reads the
  // precomputed interval table, not these), scheduled last so same-instant
  // ordering of publications and contacts is untouched.
  if (faults_ != nullptr) {
    for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
      for (const faults::FaultPlan::DownInterval& interval :
           faults_->downIntervals(NodeId(i))) {
        sim_.at(interval.start, [this, i, interval] {
          ++totals_.faultNodeDownIntervals;
          if (observer_ != nullptr) {
            obs::SimEvent event;
            event.type = obs::SimEventType::kNodeDown;
            event.time = interval.start;
            event.node = NodeId(i);
            event.value = static_cast<double>(interval.end - interval.start);
            emit(event);
          }
        });
        sim_.at(interval.end, [this, i, interval] {
          if (observer_ != nullptr) {
            obs::SimEvent event;
            event.type = obs::SimEventType::kNodeUp;
            event.time = interval.end;
            event.node = NodeId(i);
            emit(event);
          }
        });
      }
    }
  }
}

void Engine::throwIfFinished(const char* what) const {
  if (finished_) {
    throw std::logic_error(
        std::string(what) +
        ": the simulation already ran to completion and returned its "
        "result; construct a fresh Engine to run again");
  }
}

bool Engine::step() {
  throwIfFinished("Engine::step");
  ensureScheduled();
  return sim_.runOne();
}

void Engine::runUntil(SimTime horizon) {
  throwIfFinished("Engine::runUntil");
  ensureScheduled();
  sim_.runUntil(horizon);
}

EngineResult Engine::finish() {
  throwIfFinished("Engine::finish (or run)");
  ensureScheduled();
  sim_.run();
  finished_ = true;
  return currentResult();
}

EngineResult Engine::run() { return finish(); }

void Engine::usePublishStream(std::uint64_t seed) {
  if (scheduled_) {
    throw std::logic_error(
        "Engine::usePublishStream: must be called before the first advance");
  }
  publishRng_ = Rng(seed);
  hasPublishRng_ = true;
}

void Engine::setPublishHorizon(SimTime horizon) {
  if (scheduled_) {
    throw std::logic_error(
        "Engine::setPublishHorizon: must be called before the first advance");
  }
  publishHorizon_ = horizon;
}

void Engine::beginFeed() {
  throwIfFinished("Engine::beginFeed");
  if (scheduled_) {
    throw std::logic_error(
        "Engine::beginFeed: the schedule was already built");
  }
  scheduled_ = true;
  feeding_ = true;
  schedulePublications();
  scheduleChurnEvents();
}

void Engine::feedContact(const trace::Contact& contact, bool replay) {
  throwIfFinished("Engine::feedContact");
  if (!feeding_) {
    throw std::logic_error("Engine::feedContact: beginFeed() was not called");
  }
  if (replay) {
    // The contact's effects are already part of the restored state; only
    // the schedule position (publications at or before its start) advances.
    skipReplayUntil(contact.start + 1);
    return;
  }
  // The publication scheduled in beginFeed carries a smaller sequence
  // number, so at an equal instant it still runs before the contact —
  // exactly the scheduled-run order.
  sim_.at(contact.start, [this, contact] { processContact(contact); });
  sim_.runUntil(contact.start + 1);
}

void Engine::skipReplayUntil(SimTime horizon) {
  while (sim_.pendingEvents() > 0 && sim_.nextEventTime() < horizon) {
    sim_.skipOne();
  }
}

EngineResult Engine::currentResult() const {
  EngineResult result;
  result.delivery = metrics_.report(MetricScope::kNonAccess);
  result.accessDelivery = metrics_.report(MetricScope::kAccess);
  result.contributorDelivery =
      metrics_.report(MetricScope::kNonAccessContributors);
  result.freeRiderDelivery =
      metrics_.report(MetricScope::kNonAccessFreeRiders);
  result.totals = totals_;
  return result;
}

void Engine::publishDay(SimTime now) {
  // Event out files whose TTL elapsed since the last publish instant (the
  // alive set only changes at publish instants, so this scan misses
  // nothing). Skipped entirely when nobody listens.
  if (observer_ != nullptr) {
    for (FileId id : internet_.catalog().allFiles()) {
      const FileInfo* info = internet_.catalog().find(id);
      if (info == nullptr) continue;
      const SimTime expiry = info->expiresAt();
      if (expiry > expiryScanUpTo_ && expiry <= now) {
        obs::SimEvent event;
        event.type = obs::SimEventType::kFileExpired;
        event.time = expiry;
        event.file = id;
        event.value = info->popularity;
        emit(event);
      }
    }
    expiryScanUpTo_ = now;
  }

  SyntheticBatchParams batch;
  batch.count = params_.newFilesPerDay;
  batch.publishedAt = now;
  batch.ttl = static_cast<Duration>(params_.fileTtlDays) * kDay;
  batch.lambda = popularityLambdaForFilesPerDay(params_.newFilesPerDay);
  batch.piecesPerFile = params_.piecesPerFile;
  batch.pieceSizeBytes = params_.pieceSizeBytes;
  const std::vector<FileId> files = publishSyntheticBatch(
      internet_, batch, hasPublishRng_ ? publishRng_ : rng_);
  totals_.filesPublished += files.size();

  // Each node becomes interested in each new file with probability equal to
  // the file's popularity (Section VI-A).
  for (FileId fileId : files) {
    const FileInfo& info = *internet_.catalog().find(fileId);
    const std::string queryText = canonicalQueryText(info);
    for (Node& member : nodes_) {
      if (!rng_.chance(info.popularity)) continue;
      Query query;
      query.owner = member.id();
      query.text = queryText;
      query.target = fileId;
      query.issuedAt = now;
      query.ttl = info.ttl;
      query.id = metrics_.registerQuery(
          query.owner, fileId, now, info.ttl,
          member.options().internetAccess, member.options().freeRider);
      member.addQuery(query);
      ++totals_.queriesGenerated;
      if (member.options().internetAccess) {
        internet_.popularity().recordRequest(fileId, member.id(), now);
      }
    }
  }

  // Optionally replace publisher-assigned popularity with the server's
  // observed estimate (requests by access nodes in the past 24 h). The
  // estimate is computed after this batch's instant access-node requests,
  // so new files get a meaningful first estimate.
  if (params_.useObservedPopularity) {
    const std::size_t accessCount = nodes_.accessIds().size();
    for (FileId fileId : internet_.catalog().aliveFiles(now)) {
      internet_.catalog().setPopularity(
          fileId, internet_.popularity().observed(fileId, now, accessCount));
    }
  }

  // The popularity/alive set changed: invalidate epoch caches.
  caches(caches_, nodes_.size()).lastPublishAt = now;
  refreshPublishEpochCaches();

  // Access nodes are online: they discover and download instantly. A
  // churned-off access node is not: it catches up at its next contact (or
  // publish instant) once back up. Its user still issues queries above —
  // interest exists whether or not the device is on.
  for (NodeId id : nodes_.accessIds()) {
    if (faults_ != nullptr && faults_->isDown(id, now)) continue;
    syncAccessNode(nodes_[id], now);
  }

  // Forgers craft fakes of the day's hottest titles: same searchable name,
  // inflated popularity (so the push phases favor them), an authentication
  // tag no registry secret produced, and a URI that resolves to nothing.
  if (params_.forgerFraction > 0.0) {
    const auto topToday = internet_.topPopular(
        now, static_cast<std::size_t>(params_.forgeriesPerForgerPerDay));
    for (NodeId forgerId : nodes_.forgerIds()) {
      Node& forger = nodes_[forgerId];
      for (const Metadata* genuine : topToday) {
        Metadata forged = *genuine;
        forged.file = FileId(nextForgedId_++);
        forged.uri = "dtn://faux/" + std::to_string(forged.file.value);
        forged.popularity = 0.95;
        forged.pieceChecksums.assign(1, Sha1::hash("junk"));
        forged.authTag = Sha1::hash("forged" + forged.uri);
        forged.rebuildKeywords();
        forger.metadata().add(forged);
        ++totals_.forgeriesCrafted;
        if (observer_ != nullptr) {
          obs::SimEvent event;
          event.type = obs::SimEventType::kForgeryCrafted;
          event.time = now;
          event.node = forger.id();
          event.file = forged.file;
          event.value = forged.popularity;
          emit(event);
        }
      }
    }
  }
}

void Engine::refreshPublishEpochCaches() {
  // The carry stock scales with the alive population so a longer TTL does
  // not dilute the coverage access nodes provide. Also recomputed on
  // checkpoint restore: popularity only changes at publish instants, so the
  // stock at lastPublishAt is reproducible from the restored catalog.
  EngineCaches& cache = caches(caches_, nodes_.size());
  const SimTime now = cache.lastPublishAt;
  const std::size_t alive = internet_.catalog().aliveFiles(now).size();
  const auto stock = std::min(
      params_.accessMetadataSyncLimit,
      std::max<std::size_t>(
          10, static_cast<std::size_t>(params_.accessMetadataSyncFraction *
                                       static_cast<double>(alive))));
  cache.topPopular = internet_.topPopular(now, stock);
}

void Engine::deliverWholeFile(Node& node, FileId file, SimTime now) {
  const FileInfo* info = internet_.catalog().find(file);
  if (info == nullptr || !info->alive(now)) return;
  node.pieces().registerFile(file, info->pieceCount());
  node.pieces().setPriority(file, info->popularity);
  for (std::uint32_t p = 0; p < info->pieceCount(); ++p) {
    node.acceptPiece(file, p, info->pieceCount(), now);
  }
  metrics_.onNodeCompletedFile(node.id(), file, now);
}

void Engine::syncAccessNode(Node& node, SimTime now) {
  EngineCaches& cache = caches(caches_, nodes_.size());
  if (cache.lastPublishAt < 0) return;  // nothing published yet

  auto acceptFromServer = [&](const Metadata& md) {
    if (md.expired(now)) return;
    const bool isNew = !node.metadata().has(md.file);
    node.acceptMetadata(md, now);
    // Re-check has(): a bounded store may have shed the record on admission.
    if (isNew && node.metadata().has(md.file)) {
      metrics_.onNodeGotMetadata(node.id(), md.file, now);
    }
  };

  // 1. Search the server for this node's queries (its own, plus the stored
  //    queries of its frequent contacts under MBT). Cached per publish
  //    epoch: re-searching between publications cannot find anything new.
  std::vector<std::string> texts = node.activeQueryTexts(now);
  if (params_.protocol.distributesQueries()) {
    for (const auto& text : node.proxiedQueryTexts(now)) {
      texts.push_back(text);
    }
  }
  auto& searched = cache.searchCache[node.id().value];
  for (const std::string& text : texts) {
    auto it = searched.find(text);
    if (it != searched.end() && it->second >= cache.lastPublishAt) continue;
    searched[text] = now;
    const auto matches = internet_.search(text, now);
    // The user (or the proxy on a peer's behalf) keeps the top matches.
    const std::size_t take = std::min<std::size_t>(3, matches.size());
    for (std::size_t i = 0; i < take; ++i) {
      acceptFromServer(*matches[i].metadata);
    }
  }

  // 2. Refresh the popularity-ordered carry stock (pointless under MBT-QM,
  //    where metadata never leaves the node).
  if (params_.protocol.distributesMetadata()) {
    for (const Metadata* md : cache.topPopular) acceptFromServer(*md);
  }

  // 3. Download files this node selected ("enough bandwidth to download the
  //    files they need").
  for (FileId file : node.wantedFilesView(now)) {
    deliverWholeFile(node, file, now);
  }

  // 4. Fetch files peers advertised as wanted, to carry into the DTN.
  if (params_.accessFetchesPeerRequests) {
    for (const Uri& uri : node.peerWantedUris(now)) {
      const Metadata* md = internet_.metadataForUri(uri);
      if (md == nullptr || md->expired(now)) continue;
      acceptFromServer(*md);
      deliverWholeFile(node, md->file, now);
    }
  }
}

void Engine::expireNodeData(Node& node, SimTime now) {
  node.expire(now);
  for (FileId file : node.pieces().files()) {
    const FileInfo* info = internet_.catalog().find(file);
    if (info == nullptr || !info->alive(now)) node.pieces().removeFile(file);
  }
}

void Engine::processContact(const trace::Contact& contact) {
  const SimTime now = contact.start;
  std::vector<Node*> members;
  members.reserve(contact.members.size());
  for (NodeId id : contact.members) {
    if (id.value >= nodes_.size()) continue;
    // Churned-off members neither transmit nor receive: they simply are
    // not part of the exchange clique.
    if (faults_ != nullptr && faults_->isDown(id, now)) continue;
    members.push_back(&nodes_[id]);
  }
  if (members.size() < 2) return;
  ++totals_.contactsProcessed;

  if (observer_ != nullptr) {
    obs::SimEvent event;
    event.type = obs::SimEventType::kContactBegin;
    event.time = now;
    event.node = members.front()->id();
    event.extra = static_cast<std::uint32_t>(members.size());
    event.value = static_cast<double>(contact.duration());
    emit(event);
    // A contact *is* the exchange clique in this trace model (classroom
    // sessions, bus meetings); the dedicated event keeps clique-size
    // distributions one grep away.
    event.type = obs::SimEventType::kCliqueFormed;
    event.value = 0.0;
    emit(event);
  }

  for (Node* m : members) expireNodeData(*m, now);
  // Access members are online; they arrive at the contact synced.
  for (Node* m : members) {
    if (m->options().internetAccess) syncAccessNode(*m, now);
  }

  // --- hello exchange ----------------------------------------------------
  std::vector<std::vector<std::string>> texts(members.size());
  std::vector<std::vector<Uri>> wantedUris(members.size());
  for (std::size_t i = 0; i < members.size(); ++i) {
    texts[i] = members[i]->activeQueryTexts(now);
    for (FileId file : members[i]->wantedFilesView(now)) {
      const FileInfo* info = internet_.catalog().find(file);
      if (info != nullptr) wantedUris[i].push_back(info->uri);
    }
    // Under MBT, stored "requesting URIs" of peers are re-advertised, so a
    // request can travel multiple hops toward an access node.
    if (params_.protocol.distributesQueries()) {
      for (const Uri& uri : members[i]->peerWantedUris(now)) {
        wantedUris[i].push_back(uri);
      }
    }
  }
  if (params_.protocol.distributesQueries()) {
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = 0; j < members.size(); ++j) {
        if (i == j || !members[j]->contributes()) continue;
        members[i]->storePeerQueries(members[j]->id(), texts[j], now);
      }
    }
  }
  if (params_.protocol.distributesMetadata()) {
    // Wanted URIs exist only when metadata circulates; they ride on hellos.
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = 0; j < members.size(); ++j) {
        if (i == j) continue;
        members[i]->storePeerWants(wantedUris[j], now);
      }
    }
  }

  // Optional airtime model: long contacts move proportionally more.
  int budgetMultiplier = 1;
  if (params_.scaleBudgetsWithDuration &&
      params_.referenceContactDuration > 0) {
    budgetMultiplier = std::max<int>(
        1, static_cast<int>(contact.duration() /
                            params_.referenceContactDuration));
  }
  int metadataBudget = params_.metadataPerContact * budgetMultiplier;
  int pieceBudget = params_.filesPerContact *
                    static_cast<int>(params_.piecesPerFile) *
                    budgetMultiplier;

  // A truncated contact ends early: both phases lose the same tail
  // fraction of their budgets (possibly down to nothing).
  if (faults_ != nullptr) {
    const double keep = faults_->contactKeepFactor();
    if (keep < 1.0) {
      ++totals_.faultContactsTruncated;
      metadataBudget = static_cast<int>(metadataBudget * keep);
      pieceBudget = static_cast<int>(pieceBudget * keep);
      if (observer_ != nullptr) {
        obs::SimEvent event;
        event.type = obs::SimEventType::kFaultInjected;
        event.time = now;
        event.node = members.front()->id();
        event.extra = static_cast<std::uint32_t>(
            faults::FaultKind::kContactTruncation);
        event.value = keep;
        emit(event);
      }
    }
  }

  // --- recovery session + cross-contact catch-up --------------------------
  // The session records this contact's losses; selective acks are modeled
  // by the engine's ground truth of which receivers missed which frames.
  RecoverySession session(params_.recovery.maxRetries,
                          params_.recovery.retransmitBudget);
  RecoverySession* rsession =
      (recovery_ != nullptr && params_.recovery.maxRetries > 0) ? &session
                                                                : nullptr;
  if (rsession != nullptr && recovery_->pendingCount() > 0) {
    servePendingRecoveries(members, rsession, now);
  }

  // --- discovery phase (start of the contact, Section V rationale) -------
  if (params_.protocol.distributesMetadata() && metadataBudget > 0) {
    runDiscoveryPhase(members, now, metadataBudget, rsession);
  }

  // --- coordinator failover (mid-round churn) -----------------------------
  // The broadcast round's coordinator is positional: the first member of
  // the hello order. The baseline model only checks churn at contact start;
  // the recovery layer also checks mid-contact, when the phase-2 schedule
  // runs. Without failover the round dies with its coordinator; with it the
  // survivors elect the next live member of the hello order and resume.
  const std::vector<Node*>* downloadMembers = &members;
  std::vector<Node*> survivors;
  bool abandonDownload = false;
  if (recovery_ != nullptr && faults_ != nullptr &&
      params_.faults.churnDownFraction > 0.0) {
    Node* coordinator = members.front();
    const SimTime mid = now + contact.duration() / 2;
    if (faults_->isDown(coordinator->id(), mid)) {
      if (params_.recovery.coordinatorFailover) {
        for (Node* m : members) {
          if (m != coordinator && !faults_->isDown(m->id(), mid)) {
            survivors.push_back(m);
          }
        }
        if (survivors.size() >= 2) {
          ++totals_.coordinatorFailovers;
          if (observer_ != nullptr) {
            obs::SimEvent event;
            event.type = obs::SimEventType::kCoordinatorFailover;
            event.time = mid;
            event.node = survivors.front()->id();
            event.peer = coordinator->id();
            event.extra = static_cast<std::uint32_t>(survivors.size());
            emit(event);
          }
          downloadMembers = &survivors;
        } else {
          abandonDownload = true;
        }
      } else {
        abandonDownload = true;
      }
    }
  }

  // --- download phase -----------------------------------------------------
  if (pieceBudget > 0 && !abandonDownload) {
    runDownloadPhase(*downloadMembers, now, pieceBudget, rsession);
  }

  // --- anti-entropy repair -------------------------------------------------
  if (recovery_ != nullptr && params_.recovery.repairPerContact > 0) {
    runRepairPhase(*downloadMembers, now, rsession);
  }

  // --- ack spoofing (Byzantine loss reports) ------------------------------
  // Before the retransmission rounds run, a Byzantine member may inject
  // bogus loss reports: each claims a metadata frame it demonstrably
  // received was lost, so the sender burns retransmit budget (and pending
  // slots at later contacts) redelivering frames nobody lost. One claims
  // draw per Byzantine member per recovering contact.
  if (rsession != nullptr && adversary_ != nullptr &&
      adversary_->attackEnabled(faults::AttackKind::kAckSpoof)) {
    for (Node* m : members) {
      if (!adversary_->isByzantine(m->id())) continue;
      if (isQuarantined(m->id(), now)) continue;
      std::uint32_t claims = adversary_->spoofedAckClaims();
      if (claims == 0) continue;
      for (Node* victim : members) {
        if (claims == 0) break;
        if (victim == m) continue;
        for (const Metadata* md : victim->metadata().byPopularity()) {
          if (claims == 0) break;
          if (!m->metadata().has(md->file)) continue;
          rsession->noteLoss({victim->id(), m->id(), md->file});
          --claims;
          ++totals_.acksSpoofed;
          ++totals_.adversaryAttacks;
          if (observer_ != nullptr) {
            obs::SimEvent event;
            event.type = obs::SimEventType::kAttackInjected;
            event.time = now;
            event.node = m->id();
            event.peer = victim->id();
            event.file = md->file;
            event.extra =
                static_cast<std::uint32_t>(faults::AttackKind::kAckSpoof);
            emit(event);
          }
        }
      }
    }
  }

  // --- end-of-contact retransmission rounds + spill ------------------------
  if (rsession != nullptr) {
    while (std::optional<LostFrame> frame = session.nextRetry()) {
      attemptRedelivery(*frame, rsession, now);
    }
    // Frames the budget could not afford wait for the next re-contact of
    // their (sender, receiver) pair.
    for (const LostFrame& frame : session.drainRemaining()) {
      recovery_->addPending(frame);
    }
  }

  if (observer_ != nullptr) {
    obs::SimEvent event;
    event.type = obs::SimEventType::kContactEnd;
    event.time = contact.end;
    event.node = members.front()->id();
    event.extra = static_cast<std::uint32_t>(members.size());
    emit(event);
  }
}

void Engine::runDiscoveryPhase(const std::vector<Node*>& members, SimTime now,
                               int metadataBudget,
                               RecoverySession* session) {
  std::vector<DiscoveryPeer> peers;
  peers.reserve(members.size());
  for (Node* m : members) {
    DiscoveryPeer peer;
    peer.id = m->id();
    peer.store = &m->metadata();
    peer.rejected = &m->rejectedMetadata();
    peer.distrustedSenders = &m->distrustedPeers();
    // Pre-tokenized own (plus, under MBT, proxied) queries straight from the
    // node's per-contact cache — no per-contact string copies or
    // re-tokenization.
    peer.tokenizedQueries =
        &m->contactQueryTokens(now, params_.protocol.distributesQueries());
    peer.credits = &m->credits();
    // Quarantined peers receive but are excluded from sender selection.
    peer.contributes = m->contributes() && !isQuarantined(m->id(), now);
    peers.push_back(std::move(peer));
  }

  const auto plan = planDiscovery(peers, metadataBudget,
                                  params_.protocol.scheduling, observer_, now);
  totals_.metadataBroadcasts += plan.size();

  for (const MetadataBroadcast& b : plan) {
    const Metadata& md = *b.metadata;
    if (observer_ != nullptr) {
      obs::SimEvent event;
      event.type = obs::SimEventType::kMetadataBroadcast;
      event.time = now;
      event.node = b.sender;
      event.file = md.file;
      event.extra = static_cast<std::uint32_t>(b.requesters.size());
      event.value = md.popularity;
      emit(event);
    }
    for (Node* m : members) {
      if (m->id() == b.sender || m->metadata().has(md.file) ||
          m->rejectedMetadata().contains(md.file) ||
          m->distrusts(b.sender)) {
        continue;
      }
      // Lossy contact: this receiver misses the frame (others may still
      // hear it — loss is drawn per deliverable message-receiver pair).
      if (faults_ != nullptr &&
          metadataReceptionFaulted(m->id(), b.sender, md.file, now)) {
        if (session != nullptr) {
          ++totals_.recoveryFramesLost;
          session->noteLoss({b.sender, m->id(), md.file});
        }
        continue;
      }
      deliverMetadataTo(*m, b.sender, md, now);
    }
  }
}

bool Engine::metadataReceptionFaulted(NodeId receiver, NodeId sender,
                                      FileId file, SimTime now) {
  if (!faults_->dropMessage()) return false;
  ++totals_.faultMessagesDropped;
  if (observer_ != nullptr) {
    obs::SimEvent event;
    event.type = obs::SimEventType::kFaultInjected;
    event.time = now;
    event.node = receiver;
    event.peer = sender;
    event.file = file;
    event.extra = static_cast<std::uint32_t>(faults::FaultKind::kMessageLoss);
    emit(event);
  }
  return true;
}

void Engine::deliverMetadataTo(Node& receiver, NodeId sender,
                               const Metadata& md, SimTime now) {
  // Credit the sender before the store flips the query state.
  const bool requested = receiver.anyQueryMatches(md, now);
  receiver.acceptMetadata(md, now);
  ++totals_.metadataReceptions;
  if (receiver.rejectedMetadata().contains(md.file)) {
    // Failed verification: remember the offender, no credit.
    receiver.noteRejectedFrom(sender);
    if (observer_ != nullptr) {
      obs::SimEvent event;
      event.type = obs::SimEventType::kMetadataRejected;
      event.time = now;
      event.node = receiver.id();
      event.peer = sender;
      event.file = md.file;
      emit(event);
    }
    return;
  }
  // A bounded store may have shed the record on admission: nothing was
  // stored, so no credit, no metrics, no accept event.
  if (!receiver.metadata().has(md.file)) return;
  const bool forgedAccept =
      md.file.value >= kForgedIdBase && !receiver.options().forger;
  if (forgedAccept) ++totals_.forgeriesAccepted;
  if (requested) {
    receiver.credits().onReceivedRequested(sender);
  } else {
    receiver.credits().onReceivedUnrequested(sender, md.popularity);
  }
  metrics_.onNodeGotMetadata(receiver.id(), md.file, now);
  if (observer_ != nullptr) {
    obs::SimEvent event;
    event.type = obs::SimEventType::kMetadataAccepted;
    event.time = now;
    event.node = receiver.id();
    event.peer = sender;
    event.file = md.file;
    event.extra = requested ? 1 : 0;
    event.value = md.popularity;
    emit(event);
    if (forgedAccept) {
      event.type = obs::SimEventType::kForgeryAccepted;
      emit(event);
    }
  }
}

bool Engine::pieceReceptionFaulted(NodeId receiver, NodeId sender,
                                   FileId file, std::uint32_t piece,
                                   bool requested, SimTime now,
                                   RecoverySession* session) {
  if (faults_->dropMessage()) {
    ++totals_.faultMessagesDropped;
    if (session != nullptr) {
      ++totals_.recoveryFramesLost;
      session->noteLoss({sender, receiver, file, piece, requested});
    }
    if (observer_ != nullptr) {
      obs::SimEvent event;
      event.type = obs::SimEventType::kFaultInjected;
      event.time = now;
      event.node = receiver;
      event.peer = sender;
      event.file = file;
      event.extra =
          static_cast<std::uint32_t>(faults::FaultKind::kMessageLoss);
      emit(event);
    }
    return true;
  }
  if (faults_->corruptPiece()) {
    // The payload arrived damaged; the SHA-1 piece checksum in the held
    // metadata catches it, so the piece never enters the store and the
    // receiver re-requests it at a later contact.
    ++totals_.faultPiecesRejectedCorrupt;
    if (observer_ != nullptr) {
      obs::SimEvent event;
      event.type = obs::SimEventType::kFaultInjected;
      event.time = now;
      event.node = receiver;
      event.peer = sender;
      event.file = file;
      event.extra =
          static_cast<std::uint32_t>(faults::FaultKind::kPieceCorruption);
      emit(event);
      event.type = obs::SimEventType::kPieceRejectedCorrupt;
      event.extra = piece;
      emit(event);
    }
    return true;
  }
  return false;
}

void Engine::deliverPieceTo(Node& receiver, NodeId sender, FileId file,
                            std::uint32_t piece, const FileInfo& info,
                            bool requested, SimTime now) {
  receiver.acceptPiece(file, piece, info.pieceCount(), now);
  ++totals_.pieceReceptions;
  if (requested) {
    receiver.credits().onReceivedRequested(sender);
  } else {
    receiver.credits().onReceivedUnrequested(sender, info.popularity);
  }
  if (receiver.pieces().isComplete(file)) {
    metrics_.onNodeCompletedFile(receiver.id(), file, now);
  }
  if (observer_ != nullptr) {
    obs::SimEvent event;
    event.type = obs::SimEventType::kPieceReceived;
    event.time = now;
    event.node = receiver.id();
    event.peer = sender;
    event.file = file;
    event.extra = piece;
    event.value = info.popularity;
    emit(event);
  }
}

void Engine::noteEvidence(NodeId suspect, EvidenceKind kind, SimTime now) {
  if (reputation_ == nullptr) return;
  if (!reputation_->addEvidence(suspect, kind, now)) return;
  ++totals_.nodesQuarantined;
  // Ground truth the honest nodes cannot see: was the quarantined node
  // actually Byzantine? Pure-random-fault noise must not quarantine anyone.
  if (adversary_ == nullptr || !adversary_->isByzantine(suspect)) {
    ++totals_.falseQuarantines;
  }
  if (observer_ != nullptr) {
    obs::SimEvent event;
    event.type = obs::SimEventType::kNodeQuarantined;
    event.time = now;
    event.node = suspect;
    event.value = reputation_->suspicion(suspect, now);
    emit(event);
  }
}

bool Engine::isQuarantined(NodeId node, SimTime now) {
  if (reputation_ == nullptr) return false;
  bool released = false;
  const bool quarantined = reputation_->isQuarantined(node, now, &released);
  if (released) {
    ++totals_.nodesReleased;
    if (observer_ != nullptr) {
      obs::SimEvent event;
      event.type = obs::SimEventType::kNodeReleased;
      event.time = now;
      event.node = node;
      event.value = reputation_->suspicion(node, now);
      emit(event);
    }
  }
  return quarantined;
}

bool Engine::adversaryLiedPiece(NodeId receiver, NodeId sender, FileId file,
                                std::uint32_t piece, SimTime now) {
  if (adversary_ == nullptr || !adversary_->isByzantine(sender) ||
      !adversary_->attackEnabled(faults::AttackKind::kPieceLie)) {
    return false;
  }
  if (!adversary_->liesAboutPiece()) return false;
  // The forged payload fails the SHA-1 piece checksum in the receiver's
  // held metadata — same outcome as random corruption, but the slot was
  // burnt on purpose and (defense on) the sender is charged for it.
  ++totals_.piecesLied;
  ++totals_.adversaryAttacks;
  if (observer_ != nullptr) {
    obs::SimEvent event;
    event.type = obs::SimEventType::kAttackInjected;
    event.time = now;
    event.node = sender;
    event.peer = receiver;
    event.file = file;
    event.extra = static_cast<std::uint32_t>(faults::AttackKind::kPieceLie);
    emit(event);
    event.type = obs::SimEventType::kPieceRejectedCorrupt;
    event.node = receiver;
    event.peer = sender;
    event.extra = piece;
    emit(event);
  }
  noteEvidence(sender, EvidenceKind::kFailedVerification, now);
  return true;
}

bool Engine::adversaryPollutesFrame(NodeId sender, FileId file, SimTime now) {
  if (adversary_ == nullptr || !adversary_->isByzantine(sender) ||
      !adversary_->attackEnabled(faults::AttackKind::kPollution)) {
    return false;
  }
  if (!adversary_->pollutesFrame()) return false;
  ++totals_.pollutionInjected;
  ++totals_.adversaryAttacks;
  if (observer_ != nullptr) {
    obs::SimEvent event;
    event.type = obs::SimEventType::kAttackInjected;
    event.time = now;
    event.node = sender;
    event.file = file;
    event.extra = static_cast<std::uint32_t>(faults::AttackKind::kPollution);
    emit(event);
  }
  return true;
}

namespace {

// Lazily creates the (receiver, file) decoder, seeding it with unit rows
// for pieces the node already holds in the clear (delivered by an access
// gateway, a repair push, or before a mode switch) so those count toward
// rank and are never re-sent as deficit.
coding::GenerationDecoder& codedDecoderFor(CodedEngineState& state,
                                           const Node& member, FileId file,
                                           std::uint32_t generationSize) {
  auto& byFile = state.decoders[member.id()];
  auto it = byFile.find(file);
  if (it == byFile.end()) {
    it = byFile.emplace(file, coding::GenerationDecoder(generationSize))
             .first;
    for (std::uint32_t p = 0; p < generationSize; ++p) {
      if (member.pieces().hasPiece(file, p)) it->second.addSourcePiece(p);
    }
  }
  return it->second;
}

}  // namespace

std::vector<std::uint8_t> Engine::codedFrameCoefficients(
    Node& sender, FileId file, std::uint32_t generationSize,
    std::uint64_t seed, bool* taintedOut) {
  if (taintedOut != nullptr) *taintedOut = false;
  if (sender.pieces().isComplete(file)) {
    return coding::sparseCoefficients(generationSize, seed,
                                      params_.coded.sparsity);
  }
  return codedDecoderFor(*coded_, sender, file, generationSize)
      .recodeCoefficients(seed, params_.coded.sparsity, nullptr, taintedOut);
}

bool Engine::deliverCodedFrameTo(Node& receiver, NodeId sender, FileId file,
                                 std::uint32_t generationSize, bool requested,
                                 std::span<const std::uint8_t> coefficients,
                                 bool polluted, std::uint32_t origin,
                                 const FileInfo& info, SimTime now) {
  coding::GenerationDecoder& decoder =
      codedDecoderFor(*coded_, receiver, file, generationSize);
  const std::uint64_t opsBefore = decoder.rowOps();
  const std::uint64_t degenerateBefore = decoder.degenerateFrames();
  const bool innovative = decoder.addFrame(coefficients, {}, polluted, origin);
  totals_.codedDecodeRowOps += decoder.rowOps() - opsBefore;
  totals_.codedDegenerateFrames +=
      decoder.degenerateFrames() - degenerateBefore;
  if (!innovative) {
    ++totals_.codedRedundantFrames;
    return false;
  }
  ++totals_.codedInnovativeFrames;
  if (requested) {
    receiver.credits().onReceivedRequested(sender);
  } else {
    receiver.credits().onReceivedUnrequested(sender, info.popularity);
  }
  if (observer_ != nullptr) {
    obs::SimEvent event;
    event.type = obs::SimEventType::kInnovativeFrame;
    event.time = now;
    event.node = receiver.id();
    event.peer = sender;
    event.file = file;
    event.extra = decoder.rank();
    event.value = info.popularity;
    emit(event);
  }
  if (!decoder.complete()) return true;
  if (decoder.tainted() && reputation_ != nullptr) {
    // Defense on: the per-generation piece-hash pass over the decoded
    // output fails, so the whole generation is rolled back — nothing is
    // stored, the decoder is retired, and the receiver re-collects from
    // scratch (clear-held pieces reseed the fresh decoder). Every sender
    // whose frame arrived polluted is charged.
    ++totals_.generationsRolledBack;
    totals_.pollutionDetected += decoder.pollutedRows();
    if (observer_ != nullptr) {
      obs::SimEvent event;
      event.type = obs::SimEventType::kPollutionDetected;
      event.time = now;
      event.node = receiver.id();
      event.peer = sender;
      event.file = file;
      event.extra = decoder.pollutedRows();
      event.value = info.popularity;
      emit(event);
      event.type = obs::SimEventType::kGenerationRolledBack;
      event.extra = generationSize;
      emit(event);
    }
    for (std::uint32_t culprit : decoder.pollutedOrigins()) {
      noteEvidence(NodeId{culprit}, EvidenceKind::kFailedVerification, now);
    }
    coded_->decoders[receiver.id()].erase(file);
    return true;
  }
  const bool garbage = decoder.tainted();
  if (garbage) {
    // Defense off: the junk decodes "successfully". The receptions are real
    // traffic (stored pieces, events, counters) but the file's content is
    // garbage, so it never counts as delivered — the undefended collapse
    // the bench's adversary axis measures.
    ++totals_.pollutedDeliveries;
  }
  // Full rank: every source piece is a row-space lookup. Store the missing
  // ones (the reception credit was granted per innovative frame above, so
  // the decoded pieces carry no extra credit) and retire the decoder.
  for (std::uint32_t p = 0; p < generationSize; ++p) {
    if (receiver.pieces().hasPiece(file, p)) continue;
    receiver.acceptPiece(file, p, generationSize, now);
    ++totals_.pieceReceptions;
    if (observer_ != nullptr) {
      obs::SimEvent event;
      event.type = obs::SimEventType::kPieceReceived;
      event.time = now;
      event.node = receiver.id();
      event.peer = sender;
      event.file = file;
      event.extra = p;
      event.value = info.popularity;
      emit(event);
    }
  }
  if (!garbage) {
    if (receiver.pieces().isComplete(file)) {
      metrics_.onNodeCompletedFile(receiver.id(), file, now);
    }
    ++totals_.generationsDecoded;
    if (observer_ != nullptr) {
      obs::SimEvent event;
      event.type = obs::SimEventType::kGenerationDecoded;
      event.time = now;
      event.node = receiver.id();
      event.peer = sender;
      event.file = file;
      event.extra = generationSize;
      event.value = info.popularity;
      emit(event);
    }
  }
  coded_->decoders[receiver.id()].erase(file);
  return true;
}

void Engine::deliverCodedBroadcast(const CodedBroadcast& cb,
                                   const std::vector<Node*>& members,
                                   SimTime now, RecoverySession* session) {
  const FileInfo* info = internet_.catalog().find(cb.file);
  totals_.pieceBroadcasts += cb.frames;
  totals_.codedBroadcasts += cb.frames;
  Node& sender = node(cb.sender);
  for (std::uint32_t f = 0; f < cb.frames; ++f) {
    const std::uint64_t seed = coded_->rng();
    if (observer_ != nullptr) {
      obs::SimEvent event;
      event.type = obs::SimEventType::kCodedBroadcast;
      event.time = now;
      event.node = cb.sender;
      event.file = cb.file;
      event.extra = cb.generationSize;
      event.value = cb.popularity;
      emit(event);
    }
    if (info == nullptr) continue;
    const bool polluted = adversaryPollutesFrame(cb.sender, cb.file, now);
    bool relayTainted = false;
    const std::vector<std::uint8_t> coefficients = codedFrameCoefficients(
        sender, cb.file, cb.generationSize, seed, &relayTainted);
    // A relayed mix of an already-tainted row space carries the junk along
    // but the honest relayer is not to blame: no origin is attached.
    const std::uint32_t origin =
        polluted ? cb.sender.value : coding::GenerationDecoder::kNoOrigin;
    for (Node* m : members) {
      if (m->id() == cb.sender || m->pieces().isComplete(cb.file)) continue;
      const bool requested =
          std::find(cb.requesters.begin(), cb.requesters.end(), m->id()) !=
          cb.requesters.end();
      if (faults_ != nullptr) {
        if (faults_->dropMessage()) {
          ++totals_.faultMessagesDropped;
          if (session != nullptr) {
            ++totals_.recoveryFramesLost;
            // A lost coded frame is replaceable by ANY fresh combination:
            // the pending entry records the generation, not the frame.
            session->noteLoss(
                {cb.sender, m->id(), cb.file, kCodedFrameIndex, requested});
          }
          if (observer_ != nullptr) {
            obs::SimEvent event;
            event.type = obs::SimEventType::kFaultInjected;
            event.time = now;
            event.node = m->id();
            event.peer = cb.sender;
            event.file = cb.file;
            event.extra =
                static_cast<std::uint32_t>(faults::FaultKind::kMessageLoss);
            emit(event);
          }
          continue;
        }
        if (faults_->corruptPiece()) {
          // A damaged combination fails its frame checksum; folding it
          // would poison the whole generation, so it is rejected outright.
          ++totals_.faultPiecesRejectedCorrupt;
          ++totals_.codedDecodeFailures;
          if (observer_ != nullptr) {
            obs::SimEvent event;
            event.type = obs::SimEventType::kFaultInjected;
            event.time = now;
            event.node = m->id();
            event.peer = cb.sender;
            event.file = cb.file;
            event.extra = static_cast<std::uint32_t>(
                faults::FaultKind::kPieceCorruption);
            emit(event);
            event.type = obs::SimEventType::kDecodeFailed;
            event.extra = cb.generationSize;
            emit(event);
          }
          continue;
        }
      }
      deliverCodedFrameTo(*m, cb.sender, cb.file, cb.generationSize,
                          requested, coefficients, polluted || relayTainted,
                          origin, *info, now);
    }
  }
}

void Engine::runDownloadPhase(const std::vector<Node*>& members, SimTime now,
                              int pieceBudget, RecoverySession* session) {
  std::vector<DownloadPeer> peers;
  peers.reserve(members.size());
  // Gateway behaviour: an access member is online *during* the contact, so
  // it can fetch any file the clique currently requests straight from the
  // Internet ("enough bandwidth to download the files they need"); the
  // per-contact broadcast budget still gates the DTN side.
  std::vector<FileId> cliqueWants;
  for (Node* m : members) {
    for (FileId file : m->wantedFilesView(now)) cliqueWants.push_back(file);
  }
  for (Node* m : members) {
    if (!m->options().internetAccess) continue;
    for (FileId file : cliqueWants) {
      if (!m->pieces().isComplete(file)) deliverWholeFile(*m, file, now);
    }
  }

  for (Node* m : members) {
    DownloadPeer peer;
    peer.id = m->id();
    peer.pieces = &m->pieces();
    peer.wanted = m->wantedFilesView(now);
    peer.credits = &m->credits();
    // Quarantined peers keep receiving (an honest false positive must be
    // able to catch up) but are excluded from sender selection.
    peer.contributes = m->contributes() && !isQuarantined(m->id(), now);
    peers.push_back(std::move(peer));
  }

  const int budget = pieceBudget;
  const PopularityFn popularityOf = [this](FileId file) {
    const FileInfo* info = internet_.catalog().find(file);
    return info == nullptr ? 0.0 : info->popularity;
  };

  DownloadRequest request;
  request.peers = peers;
  request.popularityOf = &popularityOf;
  request.budgetPieces = budget;
  request.pushOrder = params_.pushOrder;
  request.coded = params_.coded;
  request.observer = observer_;
  request.now = now;
  DownloadPlan plan = planner_->plan(request);

  // Coordinator abuse: the broadcast schedulings with a coordinator (the
  // paper motivates tit-for-tat precisely because a selfish coordinator
  // can cheat) elect the first non-quarantined member of the hello order;
  // a Byzantine coordinator silently drops part of the planned schedule.
  if (adversary_ != nullptr &&
      adversary_->attackEnabled(faults::AttackKind::kCoordinator) &&
      params_.protocol.scheduling != Scheduling::kTitForTat &&
      params_.downloadMode != DownloadMode::kPairwise) {
    NodeId coordinator{};
    bool haveCoordinator = false;
    for (Node* m : members) {
      if (!isQuarantined(m->id(), now)) {
        coordinator = m->id();
        haveCoordinator = true;
        break;
      }
    }
    if (haveCoordinator && adversary_->isByzantine(coordinator)) {
      const auto suppress = [&](NodeId sender, FileId file) {
        if (!adversary_->dropsPlannedBroadcast()) return false;
        ++totals_.broadcastsSuppressed;
        ++totals_.adversaryAttacks;
        if (observer_ != nullptr) {
          obs::SimEvent event;
          event.type = obs::SimEventType::kAttackInjected;
          event.time = now;
          event.node = coordinator;
          event.peer = sender;
          event.file = file;
          event.extra =
              static_cast<std::uint32_t>(faults::AttackKind::kCoordinator);
          emit(event);
        }
        // The scheduled sender saw its slot vanish: observable misbehavior
        // of whoever ran the round.
        noteEvidence(coordinator, EvidenceKind::kBroadcastSuppressed, now);
        return true;
      };
      std::erase_if(plan.broadcasts, [&](const PieceBroadcast& b) {
        return suppress(b.sender, b.file);
      });
      std::erase_if(plan.coded, [&](const CodedBroadcast& cb) {
        return suppress(cb.sender, cb.file);
      });
    }
  }

  if (params_.downloadMode == DownloadMode::kPairwise) {
    // Prior-work baseline: members pair off, each pair exchanges over a
    // unicast link. The clique is one collision domain, so the per-contact
    // budget is shared across all pairs (round-robin), and each
    // transmission serves exactly one receiver — the inefficiency the
    // paper's broadcast scheme removes.
    const auto& perPair = plan.transfers;
    std::vector<std::vector<PieceTransfer>> byPair;
    for (const PieceTransfer& t : perPair) {
      if (byPair.empty() || byPair.back().front().sender != t.sender ||
          byPair.back().front().receiver != t.receiver) {
        // planPairwiseDownload emits transfers grouped by pair; a change of
        // (sender, receiver) within a pair (reverse direction) still
        // belongs to the same link.
        const bool sameLink =
            !byPair.empty() &&
            ((byPair.back().front().sender == t.receiver &&
              byPair.back().front().receiver == t.sender) ||
             (byPair.back().front().sender == t.sender &&
              byPair.back().front().receiver == t.receiver));
        if (!sameLink) byPair.emplace_back();
      }
      byPair.back().push_back(t);
    }
    std::vector<PieceTransfer> transfers;
    std::vector<std::size_t> cursor(byPair.size(), 0);
    while (static_cast<int>(transfers.size()) < budget) {
      bool any = false;
      for (std::size_t p = 0;
           p < byPair.size() &&
           static_cast<int>(transfers.size()) < budget;
           ++p) {
        if (cursor[p] < byPair[p].size()) {
          transfers.push_back(byPair[p][cursor[p]++]);
          any = true;
        }
      }
      if (!any) break;
    }
    totals_.pieceBroadcasts += transfers.size();
    for (const PieceTransfer& t : transfers) {
      const FileInfo* info = internet_.catalog().find(t.file);
      if (observer_ != nullptr) {
        obs::SimEvent event;
        event.type = obs::SimEventType::kPieceBroadcast;
        event.time = now;
        event.node = t.sender;
        event.peer = t.receiver;
        event.file = t.file;
        event.extra = t.piece;
        emit(event);
      }
      // Node ids are dense indices into nodes_; no per-contact map needed.
      Node* receiver = &node(t.receiver);
      if (info == nullptr ||
          receiver->pieces().hasPiece(t.file, t.piece)) {
        continue;
      }
      if (adversaryLiedPiece(t.receiver, t.sender, t.file, t.piece, now)) {
        continue;
      }
      if (faults_ != nullptr &&
          pieceReceptionFaulted(t.receiver, t.sender, t.file, t.piece,
                                t.requested, now, session)) {
        continue;
      }
      deliverPieceTo(*receiver, t.sender, t.file, t.piece, *info,
                     t.requested, now);
    }
    return;
  }

  if (params_.downloadMode == DownloadMode::kCoded) {
    for (const CodedBroadcast& cb : plan.coded) {
      deliverCodedBroadcast(cb, members, now, session);
    }
    return;
  }

  totals_.pieceBroadcasts += plan.broadcasts.size();

  for (const PieceBroadcast& b : plan.broadcasts) {
    const FileInfo* info = internet_.catalog().find(b.file);
    if (observer_ != nullptr) {
      obs::SimEvent event;
      event.type = obs::SimEventType::kPieceBroadcast;
      event.time = now;
      event.node = b.sender;
      event.file = b.file;
      event.extra = b.piece;
      event.value = info == nullptr ? 0.0 : info->popularity;
      emit(event);
    }
    if (info == nullptr) continue;
    for (Node* m : members) {
      if (m->id() == b.sender || m->pieces().hasPiece(b.file, b.piece)) {
        continue;
      }
      const bool requested =
          std::find(b.requesters.begin(), b.requesters.end(), m->id()) !=
          b.requesters.end();
      // The lie is drawn per deliverable (piece, receiver) pair, the same
      // discipline as the channel fault draws.
      if (adversaryLiedPiece(m->id(), b.sender, b.file, b.piece, now)) {
        continue;
      }
      if (faults_ != nullptr &&
          pieceReceptionFaulted(m->id(), b.sender, b.file, b.piece,
                                requested, now, session)) {
        continue;
      }
      deliverPieceTo(*m, b.sender, b.file, b.piece, *info, requested, now);
    }
  }
}

void Engine::attemptRedelivery(LostFrame frame, RecoverySession* session,
                               SimTime now) {
  // The resend is counted (and evented) whether or not the frame is still
  // needed: the sender retransmits everything its end-of-phase ack pass
  // reported missing, and a duplicate is simply discarded by the receiver.
  ++totals_.recoveryRetransmits;
  if (observer_ != nullptr) {
    obs::SimEvent event;
    event.type = obs::SimEventType::kRetransmit;
    event.time = now;
    event.node = frame.receiver;
    event.peer = frame.sender;
    event.file = frame.file;
    event.extra = frame.piece;
    emit(event);
  }
  Node& sender = node(frame.sender);
  Node& receiver = node(frame.receiver);
  if (frame.isMetadata()) {
    const Metadata* md = sender.metadata().get(frame.file);
    if (md == nullptr || md->expired(now) ||
        receiver.rejectedMetadata().contains(frame.file) ||
        receiver.distrusts(frame.sender)) {
      return;  // no longer deliverable
    }
    if (receiver.metadata().has(frame.file)) {
      // The "lost" record is already there: a benign race (another sender
      // redelivered first), or a spoofed ack that burnt this retransmit
      // slot on purpose. Weak evidence either way — hence the low weight.
      noteEvidence(frame.receiver, EvidenceKind::kAckAnomaly, now);
      return;
    }
    if (faults_ != nullptr &&
        metadataReceptionFaulted(frame.receiver, frame.sender, frame.file,
                                 now)) {
      ++frame.attempts;
      if (session != nullptr) session->requeue(frame);
      return;
    }
    deliverMetadataTo(receiver, frame.sender, *md, now);
    if (receiver.metadata().has(frame.file)) ++totals_.recoveryRedeliveries;
    return;
  }
  const FileInfo* info = internet_.catalog().find(frame.file);
  if (coded_ != nullptr && frame.piece == kCodedFrameIndex) {
    // Coded repair: instead of replaying the lost frame, the sender draws a
    // *fresh* combination — any independent mix of its row space is exactly
    // as useful, so nothing needs remembering beyond the generation id.
    if (info == nullptr || !info->alive(now) ||
        receiver.pieces().isComplete(frame.file) ||
        (sender.pieces().piecesHeld(frame.file) == 0 &&
         !sender.pieces().isComplete(frame.file))) {
      return;
    }
    if (faults_ != nullptr) {
      if (faults_->dropMessage()) {
        ++totals_.faultMessagesDropped;
        if (observer_ != nullptr) {
          obs::SimEvent event;
          event.type = obs::SimEventType::kFaultInjected;
          event.time = now;
          event.node = frame.receiver;
          event.peer = frame.sender;
          event.file = frame.file;
          event.extra =
              static_cast<std::uint32_t>(faults::FaultKind::kMessageLoss);
          emit(event);
        }
        ++frame.attempts;
        if (session != nullptr) session->requeue(frame);
        return;
      }
      if (faults_->corruptPiece()) {
        ++totals_.faultPiecesRejectedCorrupt;
        ++totals_.codedDecodeFailures;
        if (observer_ != nullptr) {
          obs::SimEvent event;
          event.type = obs::SimEventType::kFaultInjected;
          event.time = now;
          event.node = frame.receiver;
          event.peer = frame.sender;
          event.file = frame.file;
          event.extra = static_cast<std::uint32_t>(
              faults::FaultKind::kPieceCorruption);
          emit(event);
          event.type = obs::SimEventType::kDecodeFailed;
          event.extra = info->pieceCount();
          emit(event);
        }
        ++frame.attempts;
        if (session != nullptr) session->requeue(frame);
        return;
      }
    }
    const std::uint32_t generationSize = info->pieceCount();
    const std::uint64_t seed = coded_->rng();
    const bool polluted = adversaryPollutesFrame(frame.sender, frame.file, now);
    bool relayTainted = false;
    const std::vector<std::uint8_t> coefficients = codedFrameCoefficients(
        sender, frame.file, generationSize, seed, &relayTainted);
    if (deliverCodedFrameTo(receiver, frame.sender, frame.file,
                            generationSize, frame.requested, coefficients,
                            polluted || relayTainted,
                            polluted ? frame.sender.value
                                     : coding::GenerationDecoder::kNoOrigin,
                            *info, now)) {
      ++totals_.recoveryRedeliveries;
    }
    return;
  }
  if (info == nullptr || !info->alive(now) ||
      !sender.pieces().hasPiece(frame.file, frame.piece) ||
      receiver.pieces().hasPiece(frame.file, frame.piece)) {
    return;
  }
  if (adversaryLiedPiece(frame.receiver, frame.sender, frame.file,
                         frame.piece, now)) {
    // Rejected by the checksum, exactly like corruption: retry later.
    ++frame.attempts;
    if (session != nullptr) session->requeue(frame);
    return;
  }
  if (faults_ != nullptr &&
      pieceReceptionFaulted(frame.receiver, frame.sender, frame.file,
                            frame.piece, frame.requested, now, nullptr)) {
    // Lost (or corrupted) again: back to the queue, not noteLoss — a
    // retransmission loss is a retry, not a fresh frame.
    ++frame.attempts;
    if (session != nullptr) session->requeue(frame);
    return;
  }
  deliverPieceTo(receiver, frame.sender, frame.file, frame.piece, *info,
                 frame.requested, now);
  ++totals_.recoveryRedeliveries;
}

void Engine::servePendingRecoveries(const std::vector<Node*>& members,
                                    RecoverySession* session, SimTime now) {
  for (Node* s : members) {
    if (!recovery_->hasPending(s->id())) continue;
    for (Node* r : members) {
      if (r == s) continue;
      for (const LostFrame& frame :
           recovery_->takePending(s->id(), r->id())) {
        attemptRedelivery(frame, session, now);
      }
    }
  }
}

void Engine::runRepairPhase(const std::vector<Node*>& members, SimTime now,
                            RecoverySession* session) {
  int budget = params_.recovery.repairPerContact;
  for (Node* receiverPtr : members) {
    if (budget <= 0) break;
    Node& receiver = *receiverPtr;
    // A Byzantine receiver may forge an *empty* summary, soliciting pushes
    // of data it already holds to burn the shared repair budget. One draw
    // per Byzantine repair-round participation.
    bool forgedSummary = false;
    if (adversary_ != nullptr && adversary_->isByzantine(receiver.id()) &&
        adversary_->attackEnabled(faults::AttackKind::kFalseSummary) &&
        adversary_->forgesSummary()) {
      forgedSummary = true;
      ++totals_.summariesForged;
      ++totals_.adversaryAttacks;
      if (observer_ != nullptr) {
        obs::SimEvent event;
        event.type = obs::SimEventType::kAttackInjected;
        event.time = now;
        event.node = receiver.id();
        event.extra =
            static_cast<std::uint32_t>(faults::AttackKind::kFalseSummary);
        emit(event);
      }
    }
    // The receiver summarises everything it holds. A Bloom filter has no
    // false negatives, so a negative membership test proves the record is
    // missing; a false positive (~1%) only makes repair skip a genuinely
    // missing record.
    SummaryVector summary(receiver.metadata().size() +
                          receiver.pieces().totalPiecesHeld());
    if (!forgedSummary) {
      for (const Metadata* md : receiver.metadata().all()) {
        summary.insert(SummaryVector::metadataKey(md->file));
      }
      for (FileId file : receiver.pieces().files()) {
        const std::uint32_t count = receiver.pieces().pieceCount(file);
        for (std::uint32_t p = 0; p < count; ++p) {
          if (receiver.pieces().hasPiece(file, p)) {
            summary.insert(SummaryVector::pieceKey(file, p));
          }
        }
      }
    }
    for (Node* senderPtr : members) {
      if (budget <= 0) break;
      if (senderPtr == receiverPtr || !senderPtr->contributes() ||
          isQuarantined(senderPtr->id(), now)) {
        continue;
      }
      Node& sender = *senderPtr;
      // Metadata repair: query-matching records the summary proves missing
      // (lost to truncation/loss before the receiver ever stored them).
      if (!receiver.distrusts(sender.id())) {
        for (const Metadata* md : sender.metadata().byPopularity()) {
          if (budget <= 0) break;
          if (md->expired(now) ||
              summary.mayContain(SummaryVector::metadataKey(md->file)) ||
              receiver.rejectedMetadata().contains(md->file) ||
              !receiver.anyQueryMatches(*md, now)) {
            continue;
          }
          --budget;
          ++totals_.repairRequests;
          if (observer_ != nullptr) {
            obs::SimEvent event;
            event.type = obs::SimEventType::kRepairRequested;
            event.time = now;
            event.node = receiver.id();
            event.peer = sender.id();
            event.file = md->file;
            event.extra = kMetadataFrameIndex;
            emit(event);
          }
          if (receiver.metadata().has(md->file)) {
            // The summary claimed the record missing but the receiver holds
            // it. An honest Bloom summary has no false negatives, so the
            // advertisement was forged; the budget is burnt either way.
            noteEvidence(receiver.id(), EvidenceKind::kSummaryMismatch, now);
            continue;
          }
          if (faults_ != nullptr &&
              metadataReceptionFaulted(receiver.id(), sender.id(), md->file,
                                       now)) {
            if (session != nullptr) {
              ++totals_.recoveryFramesLost;
              session->noteLoss({sender.id(), receiver.id(), md->file});
            }
            continue;
          }
          deliverMetadataTo(receiver, sender.id(), *md, now);
          summary.insert(SummaryVector::metadataKey(md->file));
        }
      }
      // Piece repair: pieces of the receiver's wanted files the sender
      // holds and the summary proves missing (recomputed per sender —
      // metadata repair above may have selected new downloads).
      for (FileId file : receiver.wantedFilesView(now)) {
        if (budget <= 0) break;
        const FileInfo* info = internet_.catalog().find(file);
        if (info == nullptr || !info->alive(now) ||
            !sender.pieces().isRegistered(file)) {
          continue;
        }
        for (std::uint32_t p = 0; p < info->pieceCount(); ++p) {
          if (budget <= 0) break;
          if (!sender.pieces().hasPiece(file, p) ||
              summary.mayContain(SummaryVector::pieceKey(file, p))) {
            continue;
          }
          --budget;
          ++totals_.repairRequests;
          if (observer_ != nullptr) {
            obs::SimEvent event;
            event.type = obs::SimEventType::kRepairRequested;
            event.time = now;
            event.node = receiver.id();
            event.peer = sender.id();
            event.file = file;
            event.extra = p;
            emit(event);
          }
          if (receiver.pieces().hasPiece(file, p)) {
            // Same forged-summary tell as the metadata path above.
            noteEvidence(receiver.id(), EvidenceKind::kSummaryMismatch, now);
            continue;
          }
          if (adversaryLiedPiece(receiver.id(), sender.id(), file, p, now)) {
            continue;
          }
          if (faults_ != nullptr &&
              pieceReceptionFaulted(receiver.id(), sender.id(), file, p,
                                    true, now, session)) {
            continue;
          }
          deliverPieceTo(receiver, sender.id(), file, p, *info, true, now);
          summary.insert(SummaryVector::pieceKey(file, p));
        }
      }
    }
  }
}

namespace {

void saveRngState(Serializer& out, const Rng& rng) {
  for (std::uint64_t word : rng.state()) out.u64(word);
}

void loadRngState(Deserializer& in, Rng& rng) {
  std::array<std::uint64_t, 4> state;
  for (std::uint64_t& word : state) word = in.u64();
  rng.setState(state);
}

void saveTotals(Serializer& out, const EngineTotals& t) {
  out.u64(t.contactsProcessed);
  out.u64(t.filesPublished);
  out.u64(t.queriesGenerated);
  out.u64(t.metadataBroadcasts);
  out.u64(t.pieceBroadcasts);
  out.u64(t.metadataReceptions);
  out.u64(t.pieceReceptions);
  out.u64(t.forgeriesCrafted);
  out.u64(t.forgeriesAccepted);
  out.u64(t.forgeriesRejected);
  out.u64(t.faultMessagesDropped);
  out.u64(t.faultContactsTruncated);
  out.u64(t.faultPiecesRejectedCorrupt);
  out.u64(t.faultNodeDownIntervals);
  out.u64(t.recoveryFramesLost);
  out.u64(t.recoveryRetransmits);
  out.u64(t.recoveryRedeliveries);
  out.u64(t.coordinatorFailovers);
  out.u64(t.repairRequests);
  out.u64(t.metadataEvictions);
  out.u64(t.codedBroadcasts);
  out.u64(t.codedInnovativeFrames);
  out.u64(t.codedRedundantFrames);
  out.u64(t.generationsDecoded);
  out.u64(t.codedDecodeFailures);
  out.u64(t.codedDecodeRowOps);
  out.u64(t.codedDegenerateFrames);
  out.u64(t.adversaryAttacks);
  out.u64(t.pollutionInjected);
  out.u64(t.pollutionDetected);
  out.u64(t.pollutedDeliveries);
  out.u64(t.generationsRolledBack);
  out.u64(t.piecesLied);
  out.u64(t.summariesForged);
  out.u64(t.acksSpoofed);
  out.u64(t.broadcastsSuppressed);
  out.u64(t.nodesQuarantined);
  out.u64(t.nodesReleased);
  out.u64(t.falseQuarantines);
}

void loadTotals(Deserializer& in, EngineTotals& t) {
  t.contactsProcessed = in.u64();
  t.filesPublished = in.u64();
  t.queriesGenerated = in.u64();
  t.metadataBroadcasts = in.u64();
  t.pieceBroadcasts = in.u64();
  t.metadataReceptions = in.u64();
  t.pieceReceptions = in.u64();
  t.forgeriesCrafted = in.u64();
  t.forgeriesAccepted = in.u64();
  t.forgeriesRejected = in.u64();
  t.faultMessagesDropped = in.u64();
  t.faultContactsTruncated = in.u64();
  t.faultPiecesRejectedCorrupt = in.u64();
  t.faultNodeDownIntervals = in.u64();
  t.recoveryFramesLost = in.u64();
  t.recoveryRetransmits = in.u64();
  t.recoveryRedeliveries = in.u64();
  t.coordinatorFailovers = in.u64();
  t.repairRequests = in.u64();
  t.metadataEvictions = in.u64();
  t.codedBroadcasts = in.u64();
  t.codedInnovativeFrames = in.u64();
  t.codedRedundantFrames = in.u64();
  t.generationsDecoded = in.u64();
  t.codedDecodeFailures = in.u64();
  t.codedDecodeRowOps = in.u64();
  t.codedDegenerateFrames = in.u64();
  t.adversaryAttacks = in.u64();
  t.pollutionInjected = in.u64();
  t.pollutionDetected = in.u64();
  t.pollutedDeliveries = in.u64();
  t.generationsRolledBack = in.u64();
  t.piecesLied = in.u64();
  t.summariesForged = in.u64();
  t.acksSpoofed = in.u64();
  t.broadcastsSuppressed = in.u64();
  t.nodesQuarantined = in.u64();
  t.nodesReleased = in.u64();
  t.falseQuarantines = in.u64();
}

}  // namespace

void Engine::saveComponentState(Serializer& out) const {
  saveRngState(out, rng_);
  out.boolean(hasPublishRng_);
  if (hasPublishRng_) saveRngState(out, publishRng_);
  saveTotals(out, totals_);
  out.u32(nextForgedId_);
  out.i64(expiryScanUpTo_);

  out.boolean(faults_ != nullptr);
  if (faults_ != nullptr) faults_->saveState(out);

  out.boolean(recovery_ != nullptr);
  if (recovery_ != nullptr) recovery_->saveState(out);

  out.boolean(adversary_ != nullptr);
  if (adversary_ != nullptr) adversary_->saveState(out);

  out.boolean(reputation_ != nullptr);
  if (reputation_ != nullptr) reputation_->saveState(out);

  out.boolean(coded_ != nullptr);
  if (coded_ != nullptr) {
    saveRngState(out, coded_->rng);
    out.u64(coded_->decoders.size());
    for (const auto& [member, byFile] : coded_->decoders) {
      out.u32(member.value);
      out.u64(byFile.size());
      for (const auto& [file, decoder] : byFile) {
        out.u32(file.value);
        decoder.saveState(out);
      }
    }
  }

  internet_.saveState(out);
  metrics_.saveState(out);

  out.u64(nodes_.size());
  for (const Node& member : nodes_) member.saveState(out);

  out.boolean(caches_ != nullptr);
  if (caches_ != nullptr) {
    out.i64(caches_->lastPublishAt);
    out.u64(caches_->searchCache.size());
    for (const auto& searched : caches_->searchCache) {
      std::vector<std::pair<std::string, SimTime>> sorted(searched.begin(),
                                                          searched.end());
      std::sort(sorted.begin(), sorted.end());
      out.u64(sorted.size());
      for (const auto& [text, at] : sorted) {
        out.str(text);
        out.i64(at);
      }
    }
    // topPopular holds pointers into the catalog; restore recomputes it via
    // refreshPublishEpochCaches().
  }
}

void Engine::loadComponentState(Deserializer& in) {
  loadRngState(in, rng_);
  const bool hasPublishRng = in.boolean();
  if (hasPublishRng != hasPublishRng_) {
    throw SerializeError(
        "corrupt payload: publish-stream presence does not match the engine "
        "configuration");
  }
  if (hasPublishRng_) loadRngState(in, publishRng_);
  loadTotals(in, totals_);
  nextForgedId_ = in.u32();
  expiryScanUpTo_ = in.i64();

  const bool hasFaults = in.boolean();
  if (hasFaults != (faults_ != nullptr)) {
    throw SerializeError(
        "corrupt payload: fault-plan presence does not match the engine "
        "configuration");
  }
  if (faults_ != nullptr) faults_->loadState(in);

  const bool hasRecovery = in.boolean();
  if (hasRecovery != (recovery_ != nullptr)) {
    throw SerializeError(
        "corrupt payload: recovery-state presence does not match the engine "
        "configuration");
  }
  if (recovery_ != nullptr) recovery_->loadState(in);

  const bool hasAdversary = in.boolean();
  if (hasAdversary != (adversary_ != nullptr)) {
    throw SerializeError(
        "corrupt payload: adversary-plan presence does not match the engine "
        "configuration");
  }
  if (adversary_ != nullptr) adversary_->loadState(in);

  const bool hasReputation = in.boolean();
  if (hasReputation != (reputation_ != nullptr)) {
    throw SerializeError(
        "corrupt payload: reputation-state presence does not match the "
        "engine configuration");
  }
  if (reputation_ != nullptr) reputation_->loadState(in);

  const bool hasCoded = in.boolean();
  if (hasCoded != (coded_ != nullptr)) {
    throw SerializeError(
        "corrupt payload: coded-state presence does not match the engine "
        "configuration");
  }
  if (coded_ != nullptr) {
    loadRngState(in, coded_->rng);
    coded_->decoders.clear();
    const std::size_t memberCount = in.length();
    for (std::size_t i = 0; i < memberCount; ++i) {
      const NodeId member{in.u32()};
      auto& byFile = coded_->decoders[member];
      const std::size_t fileCount = in.length();
      for (std::size_t f = 0; f < fileCount; ++f) {
        const FileId file{in.u32()};
        byFile[file].loadState(in);
      }
    }
  }

  internet_.loadState(in);
  metrics_.loadState(in);

  const std::size_t nodeCount = in.length();
  if (nodeCount != nodes_.size()) {
    throw SerializeError("corrupt payload: node count mismatch");
  }
  for (Node& member : nodes_) member.loadState(in);

  caches_.reset();
  if (in.boolean()) {
    EngineCaches& cache = caches(caches_, nodes_.size());
    cache.lastPublishAt = in.i64();
    const std::size_t cacheNodes = in.length();
    if (cacheNodes != cache.searchCache.size()) {
      throw SerializeError("corrupt payload: search-cache size mismatch");
    }
    for (auto& searched : cache.searchCache) {
      searched.clear();
      const std::size_t entries = in.length();
      for (std::size_t i = 0; i < entries; ++i) {
        std::string text = in.str();
        searched[std::move(text)] = in.i64();
      }
    }
    if (cache.lastPublishAt >= 0) refreshPublishEpochCaches();
  }
}

EngineResult runSimulation(const trace::ContactTrace& trace,
                           const EngineParams& params) {
  Engine engine(trace, params);
  return engine.run();
}

}  // namespace hdtn::core
