// The protocol family evaluated in the paper (Section VI-A).
//
//   MBT    — "mobile BitTorrent": queries, metadata, and files are all
//            distributed in the DTN; nodes store the query strings of their
//            frequent contacts and collect metadata on their behalf.
//   MBT-Q  — no query distribution: a node can pull metadata matching its
//            own queries from peers, but cannot ask frequent contacts to
//            collect metadata for it.
//   MBT-QM — neither queries nor metadata are distributed: files propagate
//            by global popularity push only.
#pragma once

#include "src/core/discovery.hpp"  // Scheduling

namespace hdtn::core {

enum class ProtocolKind { kMbt, kMbtQ, kMbtQm };

[[nodiscard]] constexpr const char* protocolName(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kMbt: return "MBT";
    case ProtocolKind::kMbtQ: return "MBT-Q";
    case ProtocolKind::kMbtQm: return "MBT-QM";
  }
  return "?";
}

struct ProtocolConfig {
  ProtocolKind kind = ProtocolKind::kMbt;
  Scheduling scheduling = Scheduling::kCooperative;

  /// MBT only: peers' query strings are stored and proxied.
  [[nodiscard]] constexpr bool distributesQueries() const {
    return kind == ProtocolKind::kMbt;
  }
  /// MBT and MBT-Q: metadata records travel through the DTN.
  [[nodiscard]] constexpr bool distributesMetadata() const {
    return kind != ProtocolKind::kMbtQm;
  }
};

}  // namespace hdtn::core
