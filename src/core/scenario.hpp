// Declarative run configuration: one value type that owns everything a
// simulation run needs — the trace source, the EngineParams (including
// fault injection), and the output choices — plus a fluent builder and a
// `key = value` file format.
//
// The Scenario is the preferred entry point for tools, benches, and tests:
// instead of each binary re-implementing flag parsing, trace loading, and
// sink plumbing, it configures a Scenario (from a file, from CLI overrides,
// or through ScenarioBuilder) and calls runScenario(). All three paths
// funnel through Scenario::apply(key, value), so a scenario-file key and
// the matching hdtn_sim flag always have identical semantics.
//
// File format (see examples/*.scenario):
//
//   # comment
//   name            = nus-paper
//   trace-family    = nus
//   trace-students  = 160
//   protocol        = mbt-qm
//   access          = 0.3
//   loss-rate       = 0.05
//
// Unknown keys and malformed values are reported with line numbers.
#pragma once

#include <csignal>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "src/core/engine.hpp"
#include "src/trace/contact_trace.hpp"
#include "src/util/types.hpp"

namespace hdtn::core {

/// Where the contact trace comes from: a trace file on disk, or one of the
/// built-in generators with hdtn_tracegen's defaults.
struct TraceSpec {
  /// "file", "nus", "dieselnet", or "rwp".
  std::string family = "file";
  /// Trace file path (family == "file").
  std::string path;
  std::uint64_t seed = 1;
  /// Generator days; 0 = family default (14 for NUS, 20 for DieselNet).
  int days = 0;
  // NUS campus knobs.
  int students = 200;
  int courses = 40;
  int coursesPerStudent = 4;
  double attendance = 0.85;
  // DieselNet knobs.
  int buses = 40;
  int routes = 8;
  // Random-waypoint knobs.
  int nodes = 50;
  double hours = 12.0;
  double radioRange = 50.0;
  double fieldSize = 1000.0;

  /// One message per violation (unknown family, file family without path,
  /// non-positive sizes); empty when the spec can build a trace.
  [[nodiscard]] std::vector<std::string> validate() const;

  /// Builds (or loads) the trace. On failure returns nullopt and stores a
  /// message in *error.
  [[nodiscard]] std::optional<trace::ContactTrace> build(
      std::string* error) const;
};

/// A complete, self-describing run configuration.
struct Scenario {
  std::string name = "scenario";
  TraceSpec trace;
  EngineParams params;
  /// When non-empty, the run writes a JSONL event stream here.
  std::string eventsOut;
  /// When non-empty, the run writes a sampled delivery/totals CSV here.
  std::string timeseriesOut;
  /// Time-series sampling cadence in simulation seconds.
  Duration sampleEvery = 21600;
  /// When non-empty, the run writes a checkpoint here every checkpointEvery
  /// simulation seconds (atomically; see docs/CHECKPOINT.md). The file also
  /// records the byte offsets of eventsOut/timeseriesOut, so a resumed run
  /// reproduces them byte-identically.
  std::string checkpointOut;
  /// Checkpoint cadence in simulation seconds.
  Duration checkpointEvery = 21600;
  /// When true (and checkpointOut names an existing checkpoint), the run
  /// restores from it instead of starting over: outputs are truncated to
  /// the recorded offsets and the finished files are byte-identical to an
  /// uninterrupted run. A missing checkpoint file means a cold start.
  bool resume = false;

  /// Sets one configuration key (scenario-file key == hdtn_sim flag name).
  /// For boolean keys an empty value means true (bare --switch form).
  /// Returns an empty string on success, a descriptive error otherwise.
  [[nodiscard]] std::string apply(const std::string& key,
                                  const std::string& value);

  /// Every key apply() accepts, in a stable order (CLI override loops).
  [[nodiscard]] static const std::vector<std::string>& knownKeys();

  /// Parses a `key = value` stream; collects line-numbered errors. Returns
  /// nullopt when any line fails.
  [[nodiscard]] static std::optional<Scenario> parse(
      std::istream& in, std::vector<std::string>* errors);

  /// parse() on the named file; adds a file-level error when unreadable.
  [[nodiscard]] static std::optional<Scenario> fromFile(
      const std::string& path, std::vector<std::string>* errors);

  /// Trace-spec problems + EngineParams::validate() + output sanity, one
  /// message per violation; empty when the scenario can run.
  [[nodiscard]] std::vector<std::string> validate() const;
};

/// Fluent scenario construction for tests and embedders:
///
///   auto s = ScenarioBuilder()
///                .name("lossy-nus")
///                .nusTrace(160, 32, 12)
///                .protocol(ProtocolKind::kMbtQm)
///                .messageLossRate(0.1)
///                .build();  // throws std::invalid_argument when invalid
class ScenarioBuilder {
 public:
  ScenarioBuilder& name(std::string value);
  ScenarioBuilder& traceFile(std::string path);
  ScenarioBuilder& nusTrace(int students, int courses, int days);
  ScenarioBuilder& dieselNetTrace(int buses, int routes, int days);
  ScenarioBuilder& rwpTrace(int nodes, double hours);
  ScenarioBuilder& traceSeed(std::uint64_t seed);
  ScenarioBuilder& protocol(ProtocolKind kind);
  ScenarioBuilder& scheduling(Scheduling scheduling);
  /// Resolves a canonical registry name (coop, tft, popularity, pairwise,
  /// coded) into downloadMode + scheduling; unknown names surface in
  /// build().
  ScenarioBuilder& downloadMode(const std::string& name);
  ScenarioBuilder& codedRedundancy(double redundancy);
  ScenarioBuilder& codedSparsity(double sparsity);
  ScenarioBuilder& accessFraction(double fraction);
  ScenarioBuilder& filesPerDay(int files);
  ScenarioBuilder& ttlDays(int days);
  ScenarioBuilder& piecesPerFile(std::uint32_t pieces);
  ScenarioBuilder& freeRiderFraction(double fraction);
  ScenarioBuilder& frequentContactDays(int days);
  ScenarioBuilder& seed(std::uint64_t value);
  ScenarioBuilder& faults(faults::FaultParams params);
  ScenarioBuilder& messageLossRate(double rate);
  ScenarioBuilder& contactTruncationRate(double rate);
  ScenarioBuilder& pieceCorruptionRate(double rate);
  ScenarioBuilder& churn(double downFraction, Duration meanDowntime);
  ScenarioBuilder& recovery(RecoveryParams params);
  ScenarioBuilder& recoveryRetries(int maxRetries);
  ScenarioBuilder& recoveryRepair(int perContact);
  ScenarioBuilder& recoveryFailover(bool enabled);
  ScenarioBuilder& metadataCapacity(std::size_t records);
  ScenarioBuilder& eventsOut(std::string path);
  ScenarioBuilder& timeseriesOut(std::string path, Duration sampleEvery);
  /// Generic escape hatch onto Scenario::apply(); errors surface in build().
  ScenarioBuilder& set(const std::string& key, const std::string& value);

  /// Validates and returns the scenario; throws std::invalid_argument
  /// listing every problem (set() errors first, then Scenario::validate()).
  [[nodiscard]] Scenario build() const;

 private:
  Scenario scenario_;
  std::vector<std::string> errors_;
};

/// What one scenario run produced beyond the engine result.
struct ScenarioOutcome {
  EngineResult result;
  /// JSONL events written (0 when eventsOut was empty); counts the whole
  /// run, including events written before the checkpoint a resume loaded.
  std::uint64_t eventsWritten = 0;
  /// True when the run restored from scenario.checkpointOut.
  bool resumed = false;
  /// True when the run stopped early on a preemption request (see
  /// setScenarioStopFlag): a checkpoint was saved and `result` is the
  /// partial state at the stop boundary, not a finished run.
  bool preempted = false;
};

/// Registers a cooperative stop flag for checkpointing runs (nullptr to
/// clear). When the flag becomes nonzero, runScenario saves a checkpoint at
/// the next sample/checkpoint boundary and returns with preempted == true —
/// a later resume=true run finishes byte-identically. The flag type is
/// sig_atomic_t so a SIGTERM handler can set it directly; this is how
/// `hdtn_sim --serve` preempts workers for higher-priority jobs
/// (docs/SERVICE.md). Runs without checkpoint-out ignore the flag.
void setScenarioStopFlag(const volatile std::sig_atomic_t* flag);

/// Runs the scenario over an already-built trace, honoring the scenario's
/// event/time-series outputs. On failure (unwritable output path) returns
/// nullopt and stores a message in *error.
[[nodiscard]] std::optional<ScenarioOutcome> runScenario(
    const Scenario& scenario, const trace::ContactTrace& trace,
    std::string* error);

/// Convenience: builds the trace from the spec, then runs.
[[nodiscard]] std::optional<ScenarioOutcome> runScenario(
    const Scenario& scenario, std::string* error);

}  // namespace hdtn::core
