#include "src/core/metrics.hpp"

#include <cassert>

namespace hdtn::core {

QueryId MetricsCollector::registerQuery(NodeId owner, FileId target,
                                        SimTime issuedAt, Duration ttl,
                                        bool ownerIsAccess,
                                        bool ownerIsFreeRider) {
  QueryRecord r;
  r.id = QueryId(static_cast<std::uint32_t>(records_.size()));
  r.owner = owner;
  r.target = target;
  r.issuedAt = issuedAt;
  r.ttl = ttl;
  r.ownerIsAccess = ownerIsAccess;
  r.ownerIsFreeRider = ownerIsFreeRider;
  byOwnerTarget_[key(owner, target)].push_back(records_.size());
  records_.push_back(r);
  return records_.back().id;
}

void MetricsCollector::markMetadataDelivered(QueryId id, SimTime when) {
  assert(id.value < records_.size());
  QueryRecord& r = records_[id.value];
  if (r.metadataAt || when >= r.expiresAt() || when < r.issuedAt) return;
  r.metadataAt = when;
}

void MetricsCollector::markFileDelivered(QueryId id, SimTime when) {
  assert(id.value < records_.size());
  QueryRecord& r = records_[id.value];
  if (r.fileAt || when >= r.expiresAt() || when < r.issuedAt) return;
  r.fileAt = when;
  // Holding the complete file subsumes knowing its metadata (relevant for
  // MBT-QM, where no explicit metadata circulates).
  if (!r.metadataAt) r.metadataAt = when;
}

void MetricsCollector::onNodeGotMetadata(NodeId owner, FileId target,
                                         SimTime when) {
  auto it = byOwnerTarget_.find(key(owner, target));
  if (it == byOwnerTarget_.end()) return;
  for (std::size_t idx : it->second) {
    markMetadataDelivered(records_[idx].id, when);
  }
}

void MetricsCollector::onNodeCompletedFile(NodeId owner, FileId target,
                                           SimTime when) {
  auto it = byOwnerTarget_.find(key(owner, target));
  if (it == byOwnerTarget_.end()) return;
  for (std::size_t idx : it->second) {
    markFileDelivered(records_[idx].id, when);
  }
}

const MetricsCollector::QueryRecord& MetricsCollector::record(
    QueryId id) const {
  assert(id.value < records_.size());
  return records_[id.value];
}

bool MetricsCollector::inScope(const QueryRecord& r,
                               MetricScope scope) const {
  switch (scope) {
    case MetricScope::kNonAccess:
      return !r.ownerIsAccess;
    case MetricScope::kAccess:
      return r.ownerIsAccess;
    case MetricScope::kNonAccessContributors:
      return !r.ownerIsAccess && !r.ownerIsFreeRider;
    case MetricScope::kNonAccessFreeRiders:
      return !r.ownerIsAccess && r.ownerIsFreeRider;
    case MetricScope::kAll:
      return true;
  }
  return false;
}

DeliveryReport MetricsCollector::report(MetricScope scope) const {
  DeliveryReport report;
  double metadataDelaySum = 0.0;
  double fileDelaySum = 0.0;
  for (const QueryRecord& r : records_) {
    if (!inScope(r, scope)) continue;
    ++report.queries;
    if (r.metadataAt) {
      ++report.metadataDelivered;
      metadataDelaySum += static_cast<double>(*r.metadataAt - r.issuedAt);
    }
    if (r.fileAt) {
      ++report.filesDelivered;
      fileDelaySum += static_cast<double>(*r.fileAt - r.issuedAt);
    }
  }
  if (report.queries > 0) {
    report.metadataRatio = static_cast<double>(report.metadataDelivered) /
                           static_cast<double>(report.queries);
    report.fileRatio = static_cast<double>(report.filesDelivered) /
                       static_cast<double>(report.queries);
  }
  if (report.metadataDelivered > 0) {
    report.meanMetadataDelaySeconds =
        metadataDelaySum / static_cast<double>(report.metadataDelivered);
  }
  if (report.filesDelivered > 0) {
    report.meanFileDelaySeconds =
        fileDelaySum / static_cast<double>(report.filesDelivered);
  }
  return report;
}

void MetricsCollector::saveState(Serializer& out) const {
  out.u64(records_.size());
  for (const QueryRecord& r : records_) {
    out.u32(r.id.value);
    out.u32(r.owner.value);
    out.u32(r.target.value);
    out.i64(r.issuedAt);
    out.i64(r.ttl);
    out.boolean(r.ownerIsAccess);
    out.boolean(r.ownerIsFreeRider);
    out.boolean(r.metadataAt.has_value());
    out.i64(r.metadataAt.value_or(0));
    out.boolean(r.fileAt.has_value());
    out.i64(r.fileAt.value_or(0));
  }
}

void MetricsCollector::loadState(Deserializer& in) {
  records_.clear();
  byOwnerTarget_.clear();
  const std::size_t count = in.length();
  records_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    QueryRecord r;
    r.id = QueryId{in.u32()};
    r.owner = NodeId{in.u32()};
    r.target = FileId{in.u32()};
    r.issuedAt = in.i64();
    r.ttl = in.i64();
    r.ownerIsAccess = in.boolean();
    r.ownerIsFreeRider = in.boolean();
    const bool hasMetadataAt = in.boolean();
    const SimTime metadataAt = in.i64();
    if (hasMetadataAt) r.metadataAt = metadataAt;
    const bool hasFileAt = in.boolean();
    const SimTime fileAt = in.i64();
    if (hasFileAt) r.fileAt = fileAt;
    byOwnerTarget_[key(r.owner, r.target)].push_back(records_.size());
    records_.push_back(r);
  }
}

}  // namespace hdtn::core
