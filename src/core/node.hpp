// A hybrid-DTN node: the paper's per-device state.
//
// Each node runs a file discovery process and a file download process
// (Section III-B). This class owns the node's stores (metadata, pieces),
// its credit ledger, its own user queries, and the cooperative state the
// protocols need: stored query strings of frequent contacts (MBT query
// proxying, Section IV) and stored "requesting URIs" heard in hellos (so an
// Internet-access node can fetch files on behalf of peers).
//
// Query lifecycle: a query is *advertised* until a matching metadata record
// is stored (the simulated user then "selects" the best match); from then on
// the chosen file's URI is advertised as wanted until the file completes or
// the query expires.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/core/credit.hpp"
#include "src/core/metadata_store.hpp"
#include "src/core/piece_store.hpp"
#include "src/core/query.hpp"
#include "src/util/types.hpp"

namespace hdtn::core {

struct NodeOptions {
  /// True for Internet-access nodes ("they can download the files they
  /// need" directly; the metrics exclude them).
  bool internetAccess = false;
  /// Free-riders receive but never transmit (tit-for-tat evaluation).
  bool freeRider = false;
  /// Piece-storage capacity in pieces; 0 = unbounded (the paper's model).
  /// Bounded stores evict pieces of the lowest-popularity incomplete file.
  std::size_t pieceCapacity = 0;
  /// Metadata-record capacity; 0 = unbounded. Bounded stores shed the
  /// least-popular record (oldest first at ties) under capacity pressure.
  std::size_t metadataCapacity = 0;
  /// Forgers inject fake metadata mimicking popular files (threat model).
  bool forger = false;
};

class Node {
 public:
  Node(NodeId id, NodeOptions options);

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] const NodeOptions& options() const { return options_; }
  [[nodiscard]] bool contributes() const { return !options_.freeRider; }

  [[nodiscard]] MetadataStore& metadata() { return metadata_; }
  [[nodiscard]] const MetadataStore& metadata() const { return metadata_; }
  [[nodiscard]] PieceStore& pieces() { return pieces_; }
  [[nodiscard]] const PieceStore& pieces() const { return pieces_; }
  [[nodiscard]] CreditLedger& credits() { return credits_; }
  [[nodiscard]] const CreditLedger& credits() const { return credits_; }

  // --- own queries -------------------------------------------------------

  void addQuery(const Query& query);

  /// Texts of queries still searching for metadata at `now` (advertised in
  /// hellos). Cached per (state generation, now): the engine asks several
  /// times per contact (hello, discovery, download) and only the first call
  /// does any work. The reference is valid until the node state mutates.
  [[nodiscard]] const std::vector<std::string>& activeQueryTexts(
      SimTime now) const;

  /// Tokenized forms of the queries this node wants served during a contact:
  /// its own active queries plus, when `includeProxied`, the stored queries
  /// of its frequent contacts (MBT). Query texts are tokenized once when
  /// first seen, not per contact; the combined list is cached like
  /// activeQueryTexts. Feed to DiscoveryPeer::tokenizedQueries.
  [[nodiscard]] const std::vector<std::vector<std::string>>&
  contactQueryTokens(SimTime now, bool includeProxied) const;

  /// Files the node is currently downloading: a metadata was selected for
  /// an unexpired query and the file is not yet complete.
  [[nodiscard]] std::vector<FileId> wantedFiles(SimTime now) const;

  /// Cached wantedFiles: the engine consults the wanted list several times
  /// per contact (hellos, planners, repair) and DownloadPeer::wanted views
  /// this storage instead of copying it. The reference is valid until the
  /// node state mutates.
  [[nodiscard]] const std::vector<FileId>& wantedFilesView(SimTime now) const;

  /// True if some active (unexpired, metadata-pending) query matches `md`.
  [[nodiscard]] bool anyQueryMatches(const Metadata& md, SimTime now) const;

  /// Per-query state, for metrics and tests.
  struct QueryState {
    Query query;
    /// query.text tokenized once at addQuery time (hot paths match against
    /// tokens; the text itself is only sent in hellos).
    std::vector<std::string> tokens;
    bool metadataFound = false;
    FileId chosenFile;  ///< valid once metadataFound
    bool fileFound = false;
  };
  [[nodiscard]] const std::vector<QueryState>& queryStates() const {
    return queries_;
  }

  // --- store update hooks (called by the engine when data arrives) -------

  /// Optional authenticity check applied before any record is accepted
  /// (paper Section III-B field (f): "authentication information of the
  /// metadata against fake publishers"). Unset = accept everything.
  using MetadataVerifier = std::function<bool(const Metadata&)>;
  void setMetadataVerifier(MetadataVerifier verifier) {
    verifier_ = std::move(verifier);
  }

  /// Stores a metadata record; attaches it to any matching pending queries
  /// (the user selects it) and registers the file for download. Returns ids
  /// of queries that selected this record. Records failing the verifier are
  /// dropped (nothing stored, nothing selected) and remembered in
  /// rejectedMetadata() so peers stop re-sending them.
  std::vector<QueryId> acceptMetadata(const Metadata& md, SimTime now);

  /// File ids of records this node refused (failed verification). Exposed
  /// to the discovery planner: a rejected record counts as "already held"
  /// so it is never re-broadcast to this node.
  [[nodiscard]] const std::unordered_set<FileId>& rejectedMetadata() const {
    return rejectedMetadata_;
  }

  /// Records that `sender` delivered a record that failed verification.
  /// After kDistrustThreshold offences the sender is distrusted: this node
  /// ignores everything it transmits (a forger minting fresh fake ids every
  /// day would otherwise burn one broadcast slot per id per clique).
  void noteRejectedFrom(NodeId sender);
  [[nodiscard]] bool distrusts(NodeId peer) const {
    return distrustedPeers_.contains(peer);
  }
  [[nodiscard]] const std::unordered_set<NodeId>& distrustedPeers() const {
    return distrustedPeers_;
  }

  static constexpr int kDistrustThreshold = 2;

  /// Stores one piece (registering the file first when needed). Returns ids
  /// of queries satisfied because the file just completed.
  std::vector<QueryId> acceptPiece(FileId file, std::uint32_t piece,
                                   std::uint32_t pieceCount, SimTime now);

  /// Drops expired metadata and forgets stale cooperative state.
  void expire(SimTime now);

  // --- cooperative state --------------------------------------------------

  void setFrequentContacts(std::vector<NodeId> contacts);
  [[nodiscard]] const std::vector<NodeId>& frequentContacts() const {
    return frequentContacts_;
  }
  [[nodiscard]] bool isFrequentContact(NodeId peer) const;

  /// Replaces the stored query strings of a frequent contact (MBT). Calls
  /// for non-frequent peers are ignored.
  void storePeerQueries(NodeId peer, std::vector<std::string> texts,
                        SimTime now);

  /// Stored frequent-contact query texts still fresh at `now` (deduplicated,
  /// sorted). Cached like activeQueryTexts; valid until the next mutation.
  [[nodiscard]] const std::vector<std::string>& proxiedQueryTexts(
      SimTime now) const;

  /// Remembers URIs that peers advertised as wanted ("requesting URIs").
  void storePeerWants(const std::vector<Uri>& uris, SimTime now);

  /// Peer-wanted URIs still fresh at `now`, sorted.
  [[nodiscard]] std::vector<Uri> peerWantedUris(SimTime now) const;

  /// Freshness horizon for proxied queries and peer wants.
  void setCooperativeStateTtl(Duration ttl) { cooperativeTtl_ = ttl; }

  /// Checkpoints the node's mutable protocol state: stores, credits, query
  /// lifecycle, distrust bookkeeping, and cooperative state. Construction
  /// state (id, options, verifier, frequent contacts, cooperative TTL) is
  /// reconstructed deterministically by Engine setup and not serialized.
  void saveState(Serializer& out) const;
  void loadState(Deserializer& in);

 private:
  NodeId id_;
  NodeOptions options_;
  MetadataVerifier verifier_;
  std::unordered_set<FileId> rejectedMetadata_;
  std::unordered_map<NodeId, int> rejectionsFrom_;
  std::unordered_set<NodeId> distrustedPeers_;
  MetadataStore metadata_;
  PieceStore pieces_;
  CreditLedger credits_;
  std::vector<QueryState> queries_;

  std::vector<NodeId> frequentContacts_;
  struct StoredQueries {
    std::vector<std::string> texts;
    SimTime storedAt = 0;
  };
  std::unordered_map<NodeId, StoredQueries> peerQueries_;
  std::unordered_map<Uri, SimTime> peerWants_;
  Duration cooperativeTtl_ = 3 * kDay;

  // --- per-contact caches -------------------------------------------------
  // The engine asks for the same derived views several times per contact
  // (hello exchange, discovery planning, access sync), always at the same
  // `now`. Each cache is valid while (generation, now) both match; any
  // mutation of query/cooperative state bumps stateGen_ (0 is reserved so
  // default-constructed caches start stale).
  template <typename T>
  struct ContactCache {
    std::uint64_t generation = 0;
    SimTime at = 0;
    T value;
  };
  void touch() { ++stateGen_; }

  std::uint64_t stateGen_ = 1;
  mutable ContactCache<std::vector<std::string>> activeTextsCache_;
  mutable ContactCache<std::vector<std::string>> proxiedTextsCache_;
  mutable ContactCache<std::vector<std::vector<std::string>>>
      ownTokensCache_;
  mutable ContactCache<std::vector<std::vector<std::string>>>
      combinedTokensCache_;
  mutable ContactCache<std::vector<FileId>> wantedCache_;
};

}  // namespace hdtn::core
