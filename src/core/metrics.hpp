// Delivery accounting.
//
// The paper's performance measurements are the delivery ratios of metadata
// and of files: delivered count over total queries generated, measured over
// the non-Internet-access nodes (Section VI-B). The collector tracks every
// generated query against its ground-truth target file and the times its
// metadata / complete file reached the owner.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "src/util/serialize.hpp"
#include "src/util/types.hpp"

namespace hdtn::core {

/// Population slices a report can be computed over.
enum class MetricScope {
  kNonAccess,             ///< the paper's measurement population
  kAccess,                ///< Internet-access nodes (sanity: ratios ~ 1)
  kNonAccessContributors, ///< non-access nodes that are not free-riders
  kNonAccessFreeRiders,   ///< non-access free-riders (TFT evaluation)
  kAll,
};

struct DeliveryReport {
  std::size_t queries = 0;
  std::size_t metadataDelivered = 0;
  std::size_t filesDelivered = 0;
  double metadataRatio = 0.0;
  double fileRatio = 0.0;
  /// Mean delay from query issue to delivery, over delivered ones only.
  double meanMetadataDelaySeconds = 0.0;
  double meanFileDelaySeconds = 0.0;
};

class MetricsCollector {
 public:
  struct QueryRecord {
    QueryId id;
    NodeId owner;
    FileId target;
    SimTime issuedAt = 0;
    Duration ttl = 0;
    bool ownerIsAccess = false;
    bool ownerIsFreeRider = false;
    std::optional<SimTime> metadataAt;
    std::optional<SimTime> fileAt;

    [[nodiscard]] SimTime expiresAt() const { return issuedAt + ttl; }
  };

  /// Registers a generated query; returns its id.
  QueryId registerQuery(NodeId owner, FileId target, SimTime issuedAt,
                        Duration ttl, bool ownerIsAccess,
                        bool ownerIsFreeRider);

  /// Marks the owner as holding metadata of the target at `when` (first
  /// time wins; late or post-expiry marks are ignored).
  void markMetadataDelivered(QueryId id, SimTime when);
  void markFileDelivered(QueryId id, SimTime when);

  /// Marks every unsatisfied query of `owner` targeting `target`.
  void onNodeGotMetadata(NodeId owner, FileId target, SimTime when);
  void onNodeCompletedFile(NodeId owner, FileId target, SimTime when);

  [[nodiscard]] std::size_t queryCount() const { return records_.size(); }
  [[nodiscard]] const QueryRecord& record(QueryId id) const;
  [[nodiscard]] const std::vector<QueryRecord>& records() const {
    return records_;
  }

  [[nodiscard]] DeliveryReport report(MetricScope scope) const;

  /// Checkpoints every query record; the (owner, target) index is rebuilt
  /// on load.
  void saveState(Serializer& out) const;
  void loadState(Deserializer& in);

 private:
  [[nodiscard]] bool inScope(const QueryRecord& r, MetricScope scope) const;

  std::vector<QueryRecord> records_;
  /// (owner, target) -> indices into records_.
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> byOwnerTarget_;

  static std::uint64_t key(NodeId owner, FileId target) {
    return (static_cast<std::uint64_t>(owner.value) << 32) | target.value;
  }
};

}  // namespace hdtn::core
