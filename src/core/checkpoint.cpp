// Checkpoint file format and Engine save/restore.
//
// File layout (all integers little-endian):
//   [0, 8)    magic "HDTNCKPT"
//   [8, 12)   u32 format version (kCheckpointVersion)
//   [12, 20)  u64 payload size in bytes
//   [20, 40)  SHA-1 digest of the payload
//   [40, ...) payload
//
// Payload layout (written with util/serialize):
//   u64 executed events, i64 clock, str caller extra blob,
//   20-byte configuration fingerprint, then the component state
//   (Engine::saveComponentState, engine.cpp).
#include "src/core/checkpoint.hpp"

#include <cstring>
#include <stdexcept>
#include <string_view>

#include "src/core/engine.hpp"
#include "src/util/serialize.hpp"
#include "src/util/sha1.hpp"

namespace hdtn::core {

namespace {

constexpr char kMagic[8] = {'H', 'D', 'T', 'N', 'C', 'K', 'P', 'T'};
constexpr std::size_t kHeaderSize = 8 + 4 + 8 + 20;

struct ParsedCheckpoint {
  CheckpointInfo info;
  Sha1Digest fingerprint;
  std::string fileBytes;
  /// Offset of the component state inside fileBytes.
  std::size_t stateOffset = 0;
};

ParsedCheckpoint parseCheckpointFile(const std::string& path) {
  ParsedCheckpoint parsed;
  std::string error;
  if (!readFileBytes(path, &parsed.fileBytes, &error)) {
    throw CheckpointError("cannot read checkpoint: " + error);
  }
  const std::string_view bytes(parsed.fileBytes);
  if (bytes.size() < kHeaderSize) {
    throw CheckpointError(path + ": truncated checkpoint (" +
                          std::to_string(bytes.size()) +
                          " bytes, shorter than the header)");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    throw CheckpointError(path + ": not a checkpoint file (bad magic)");
  }
  Deserializer header(bytes.substr(sizeof(kMagic)));
  parsed.info.version = header.u32();
  if (parsed.info.version != kCheckpointVersion) {
    throw CheckpointError(
        path + ": unsupported checkpoint version " +
        std::to_string(parsed.info.version) + " (this build reads version " +
        std::to_string(kCheckpointVersion) + ")");
  }
  const std::uint64_t payloadSize = header.u64();
  Sha1Digest stored;
  header.raw(stored.bytes.data(), stored.bytes.size());
  if (bytes.size() - kHeaderSize != payloadSize) {
    throw CheckpointError(
        path + ": truncated checkpoint (payload is " +
        std::to_string(bytes.size() - kHeaderSize) +
        " bytes, header promises " + std::to_string(payloadSize) + ")");
  }
  const std::string_view payload = bytes.substr(kHeaderSize);
  if (!(Sha1::hash(payload) == stored)) {
    throw CheckpointError(path +
                          ": checksum mismatch (corrupt checkpoint file)");
  }
  try {
    Deserializer in(payload);
    parsed.info.executedEvents = in.u64();
    parsed.info.clock = in.i64();
    parsed.info.extra = in.str();
    in.raw(parsed.fingerprint.bytes.data(), parsed.fingerprint.bytes.size());
    parsed.stateOffset = kHeaderSize + (payload.size() - in.remaining());
  } catch (const SerializeError& e) {
    throw CheckpointError(path + ": malformed checkpoint payload: " +
                          e.what());
  }
  return parsed;
}

}  // namespace

CheckpointInfo readCheckpointInfo(const std::string& path) {
  return parseCheckpointFile(path).info;
}

Sha1Digest Engine::configFingerprint() const {
  Serializer s;
  s.u32(static_cast<std::uint32_t>(params_.protocol.kind));
  s.u32(static_cast<std::uint32_t>(params_.protocol.scheduling));
  s.u32(static_cast<std::uint32_t>(params_.downloadMode));
  s.f64(params_.internetAccessFraction);
  s.i64(params_.newFilesPerDay);
  s.i64(params_.fileTtlDays);
  s.i64(params_.metadataPerContact);
  s.i64(params_.filesPerContact);
  s.boolean(params_.scaleBudgetsWithDuration);
  s.i64(params_.referenceContactDuration);
  s.u32(static_cast<std::uint32_t>(params_.pushOrder));
  s.u32(params_.piecesPerFile);
  s.u32(params_.pieceSizeBytes);
  s.i64(params_.frequentContactPeriod);
  s.f64(params_.freeRiderFraction);
  s.boolean(params_.accessFetchesPeerRequests);
  s.u64(params_.nodePieceCapacity);
  s.f64(params_.forgerFraction);
  s.i64(params_.forgeriesPerForgerPerDay);
  s.boolean(params_.verifyMetadata);
  s.boolean(params_.useObservedPopularity);
  s.u64(params_.explicitAccessNodes.size());
  for (const NodeId id : params_.explicitAccessNodes) s.u32(id.value);
  s.u64(params_.explicitFreeRiders.size());
  for (const NodeId id : params_.explicitFreeRiders) s.u32(id.value);
  s.f64(params_.accessMetadataSyncFraction);
  s.u64(params_.accessMetadataSyncLimit);
  s.f64(params_.faults.messageLossRate);
  s.f64(params_.faults.contactTruncationRate);
  s.f64(params_.faults.truncationKeepMin);
  s.f64(params_.faults.truncationKeepMax);
  s.f64(params_.faults.pieceCorruptionRate);
  s.f64(params_.faults.churnDownFraction);
  s.i64(params_.faults.churnMeanDowntime);
  s.u64(params_.nodeMetadataCapacity);
  s.i64(params_.recovery.maxRetries);
  s.i64(params_.recovery.retransmitBudget);
  s.i64(params_.recovery.repairPerContact);
  s.u64(params_.recovery.repairQueueLimit);
  s.boolean(params_.recovery.coordinatorFailover);
  s.f64(params_.coded.redundancy);
  s.f64(params_.coded.sparsity);
  s.f64(params_.adversary.byzantineFraction);
  s.u32(params_.adversary.attacks);
  s.boolean(params_.reputation.defense);
  s.f64(params_.reputation.quarantineThreshold);
  s.f64(params_.reputation.decayPerDay);
  s.u64(params_.seed);
  // Trace identity: the schedule replay is only valid against the exact
  // same contact sequence.
  s.str(trace_.name());
  s.u64(trace_.nodeCount());
  s.u64(trace_.contacts().size());
  for (const trace::Contact& contact : trace_.contacts()) {
    s.i64(contact.start);
    s.i64(contact.end);
    s.u64(contact.members.size());
    for (const NodeId member : contact.members) s.u32(member.value);
  }
  return Sha1::hash(s.bytes());
}

void Engine::saveCheckpoint(const std::string& path,
                            std::string_view extra) const {
  if (finished_) {
    throw std::logic_error(
        "Engine::saveCheckpoint: the run already finished; there is nothing "
        "left to resume");
  }
  Serializer payload;
  payload.u64(sim_.executedEvents());
  payload.i64(sim_.now());
  payload.str(extra);
  const Sha1Digest fingerprint = configFingerprint();
  payload.raw(fingerprint.bytes.data(), fingerprint.bytes.size());
  saveComponentState(payload);

  Serializer file;
  file.raw(kMagic, sizeof(kMagic));
  file.u32(kCheckpointVersion);
  file.u64(payload.bytes().size());
  const Sha1Digest digest = Sha1::hash(payload.bytes());
  file.raw(digest.bytes.data(), digest.bytes.size());
  file.raw(payload.bytes().data(), payload.bytes().size());

  std::string error;
  if (!writeFileAtomic(path, file.bytes(), &error)) {
    throw CheckpointError("saveCheckpoint: " + error);
  }
}

void Engine::restoreCheckpoint(const std::string& path) {
  if (scheduled_ || finished_ || sim_.executedEvents() != 0) {
    throw std::logic_error(
        "Engine::restoreCheckpoint requires a freshly constructed engine "
        "(same trace and params, not yet stepped)");
  }
  if (observer_ != nullptr) {
    throw std::logic_error(
        "Engine::restoreCheckpoint: detach the observer before restoring "
        "(replayed state must not re-emit events); attach sinks afterwards");
  }
  const ParsedCheckpoint parsed = parseCheckpointFile(path);
  if (!(parsed.fingerprint == configFingerprint())) {
    throw CheckpointError(
        path +
        ": checkpoint was written by a different run configuration "
        "(params/trace fingerprint mismatch)");
  }
  try {
    Deserializer state(
        std::string_view(parsed.fileBytes).substr(parsed.stateOffset));
    loadComponentState(state);
    if (!state.done()) {
      throw SerializeError("trailing bytes after the component state");
    }
  } catch (const SerializeError& e) {
    throw CheckpointError(path + ": malformed checkpoint payload: " +
                          e.what());
  }
  // Rebuild the deterministic schedule and discard the prefix the snapshot
  // already covers, without running it.
  ensureScheduled();
  for (std::uint64_t i = 0; i < parsed.info.executedEvents; ++i) {
    if (!sim_.skipOne()) {
      throw CheckpointError(
          path +
          ": checkpoint records more executed events than the schedule "
          "holds");
    }
  }
  if (sim_.now() != parsed.info.clock) {
    throw CheckpointError(
        path + ": replayed schedule position (t=" +
        std::to_string(sim_.now()) +
        ") does not match the checkpoint clock (t=" +
        std::to_string(parsed.info.clock) + ")");
  }
}

}  // namespace hdtn::core
