// Versioned, checksummed engine snapshots.
//
// A checkpoint captures the complete mutable state of an Engine at a step
// boundary — RNG stream positions, per-node stores/credits/queries, the
// Internet catalog and popularity table, delivery metrics, engine totals,
// fault-plan cursors, and the simulator position — such that restoring it
// into a freshly constructed engine (same trace, same params) and finishing
// produces byte-identical output (report, CSV, JSONL events, time series)
// to the uninterrupted run.
//
// The event queue itself holds closures and is not serialized. Instead the
// snapshot records how many events had executed; restore rebuilds the
// engine's deterministic schedule (publications, contacts, churn
// transitions — fixed at construction, never extended by handlers) and
// discards exactly that prefix without running it. See docs/CHECKPOINT.md.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "src/util/types.hpp"

namespace hdtn::core {

/// Thrown when a checkpoint file cannot be read, fails its checksum, has an
/// unsupported version, or was written by a different run configuration.
/// Engine::restoreCheckpoint only mutates the engine after the checksum and
/// the configuration fingerprint both verify, so a throwing load never
/// leaves a partial restore behind.
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Bumped on any incompatible change to the snapshot layout. Loading a file
/// with a different version fails with CheckpointError.
inline constexpr std::uint32_t kCheckpointVersion = 5;

/// Header of a checkpoint file, readable without an engine.
struct CheckpointInfo {
  std::uint32_t version = 0;
  /// Simulation clock at save time (time of the last executed event).
  SimTime clock = 0;
  /// Events executed at save time; restore skips exactly this prefix.
  std::uint64_t executedEvents = 0;
  /// The opaque caller blob passed to Engine::saveCheckpoint (resume
  /// drivers store their own cursors here, e.g. output-file byte offsets).
  std::string extra;
};

/// Validates `path` (magic, version, payload checksum) and returns its
/// header and extra blob without touching any engine. Resume drivers call
/// this first to recover their own cursors, then construct the engine and
/// Engine::restoreCheckpoint. Throws CheckpointError on any problem.
[[nodiscard]] CheckpointInfo readCheckpointInfo(const std::string& path);

}  // namespace hdtn::core
