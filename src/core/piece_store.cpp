#include "src/core/piece_store.hpp"

#include <algorithm>
#include <cassert>

namespace hdtn::core {

std::uint32_t PieceStore::allocWords(std::uint32_t words) {
  auto freeIt = freeBlocks_.find(words);
  if (freeIt != freeBlocks_.end() && !freeIt->second.empty()) {
    const std::uint32_t offset = freeIt->second.back();
    freeIt->second.pop_back();
    std::fill_n(arena_.begin() + offset, words, 0);
    return offset;
  }
  const auto offset = static_cast<std::uint32_t>(arena_.size());
  arena_.resize(arena_.size() + words, 0);
  return offset;
}

bool PieceStore::registerFile(FileId file, std::uint32_t pieceCount) {
  assert(file.valid());
  assert(pieceCount > 0);
  auto [it, inserted] = entries_.try_emplace(file);
  if (inserted) {
    it->second.word = allocWords(wordsFor(pieceCount));
    it->second.pieces = pieceCount;
    it->second.seq = nextSeq_++;
    return true;
  }
  return it->second.pieces == pieceCount;
}

bool PieceStore::addPiece(FileId file, std::uint32_t piece) {
  auto it = entries_.find(file);
  assert(it != entries_.end() && "file must be registered before addPiece");
  Entry& e = it->second;
  assert(piece < e.pieces);
  if (bit(e, piece)) return false;
  if (capacity_ && totalHeld_ >= *capacity_) evictOnePiece();
  setBit(e, piece);
  ++e.held;
  ++totalHeld_;
  return true;
}

std::uint32_t PieceStore::addWholeFile(FileId file) {
  auto it = entries_.find(file);
  assert(it != entries_.end());
  std::uint32_t added = 0;
  for (std::uint32_t p = 0; p < it->second.pieces; ++p) {
    if (addPiece(file, p)) ++added;
  }
  return added;
}

void PieceStore::removeFile(FileId file) {
  auto it = entries_.find(file);
  if (it == entries_.end()) return;
  totalHeld_ -= it->second.held;
  freeBlocks_[wordsFor(it->second.pieces)].push_back(it->second.word);
  entries_.erase(it);
}

bool PieceStore::isRegistered(FileId file) const {
  return entries_.contains(file);
}

bool PieceStore::hasPiece(FileId file, std::uint32_t piece) const {
  auto it = entries_.find(file);
  if (it == entries_.end()) return false;
  return piece < it->second.pieces && bit(it->second, piece);
}

bool PieceStore::isComplete(FileId file) const {
  auto it = entries_.find(file);
  if (it == entries_.end()) return false;
  return it->second.held == it->second.pieces;
}

std::uint32_t PieceStore::piecesHeld(FileId file) const {
  auto it = entries_.find(file);
  return it == entries_.end() ? 0 : it->second.held;
}

std::uint32_t PieceStore::pieceCount(FileId file) const {
  auto it = entries_.find(file);
  return it == entries_.end() ? 0 : it->second.pieces;
}

std::vector<std::uint32_t> PieceStore::missingPieces(FileId file) const {
  std::vector<std::uint32_t> out;
  auto it = entries_.find(file);
  if (it == entries_.end()) return out;
  for (std::uint32_t p = 0; p < it->second.pieces; ++p) {
    if (!bit(it->second, p)) out.push_back(p);
  }
  return out;
}

std::vector<FileId> PieceStore::files() const {
  std::vector<FileId> out;
  out.reserve(entries_.size());
  for (const auto& [file, _] : entries_) out.push_back(file);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<FileId> PieceStore::completeFiles() const {
  std::vector<FileId> out;
  for (const auto& [file, e] : entries_) {
    if (e.held == e.pieces) out.push_back(file);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void PieceStore::setPriority(FileId file, double priority) {
  auto it = entries_.find(file);
  if (it != entries_.end()) it->second.priority = priority;
}

void PieceStore::evictOnePiece() {
  // Victim: lowest-priority *incomplete* file holding at least one piece;
  // complete files are preferred survivors since they are servable. Falls
  // back to the lowest-priority complete file when everything is complete.
  const Entry* victimEntry = nullptr;
  FileId victim;
  auto better = [](const Entry& candidate, const Entry* incumbent) {
    if (incumbent == nullptr) return true;
    if (candidate.priority != incumbent->priority) {
      return candidate.priority < incumbent->priority;
    }
    // Equal priority: evict the oldest registration. The seq tie-break is
    // total (seqs are unique), so victim choice is independent of hash-map
    // iteration order — checkpoint determinism depends on this.
    return candidate.seq < incumbent->seq;
  };
  for (const auto& [file, e] : entries_) {
    if (e.held == 0 || e.held == e.pieces) continue;
    if (better(e, victimEntry)) {
      victimEntry = &e;
      victim = file;
    }
  }
  if (victimEntry == nullptr) {
    for (const auto& [file, e] : entries_) {
      if (e.held == 0) continue;
      if (better(e, victimEntry)) {
        victimEntry = &e;
        victim = file;
      }
    }
  }
  if (victimEntry == nullptr) return;
  Entry& e = entries_[victim];
  for (std::uint32_t p = e.pieces; p > 0; --p) {
    if (bit(e, p - 1)) {
      clearBit(e, p - 1);
      --e.held;
      --totalHeld_;
      return;
    }
  }
}

void PieceStore::saveState(Serializer& out) const {
  const std::vector<FileId> sorted = files();
  out.u64(sorted.size());
  for (const FileId file : sorted) {
    const Entry& e = entries_.at(file);
    out.u32(file.value);
    out.u64(e.pieces);
    for (std::uint32_t p = 0; p < e.pieces; ++p) {
      out.boolean(bit(e, p));
    }
    out.f64(e.priority);
    out.u64(e.seq);
  }
  out.u64(nextSeq_);
}

void PieceStore::loadState(Deserializer& in) {
  entries_.clear();
  arena_.clear();
  freeBlocks_.clear();
  totalHeld_ = 0;
  const std::size_t count = in.length();
  for (std::size_t i = 0; i < count; ++i) {
    const FileId file{in.u32()};
    Entry e;
    e.pieces = static_cast<std::uint32_t>(in.length());
    e.word = allocWords(wordsFor(e.pieces));
    for (std::uint32_t p = 0; p < e.pieces; ++p) {
      if (in.boolean()) {
        setBit(e, p);
        ++e.held;
      }
    }
    e.priority = in.f64();
    e.seq = in.u64();
    totalHeld_ += e.held;
    entries_.emplace(file, e);
  }
  nextSeq_ = in.u64();
}

}  // namespace hdtn::core
