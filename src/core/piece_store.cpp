#include "src/core/piece_store.hpp"

#include <algorithm>
#include <cassert>

namespace hdtn::core {

bool PieceStore::registerFile(FileId file, std::uint32_t pieceCount) {
  assert(file.valid());
  assert(pieceCount > 0);
  auto [it, inserted] = entries_.try_emplace(file);
  if (inserted) {
    it->second.have.assign(pieceCount, false);
    it->second.seq = nextSeq_++;
    return true;
  }
  return it->second.have.size() == pieceCount;
}

bool PieceStore::addPiece(FileId file, std::uint32_t piece) {
  auto it = entries_.find(file);
  assert(it != entries_.end() && "file must be registered before addPiece");
  Entry& e = it->second;
  assert(piece < e.have.size());
  if (e.have[piece]) return false;
  if (capacity_ && totalHeld_ >= *capacity_) evictOnePiece();
  e.have[piece] = true;
  ++e.held;
  ++totalHeld_;
  return true;
}

std::uint32_t PieceStore::addWholeFile(FileId file) {
  auto it = entries_.find(file);
  assert(it != entries_.end());
  std::uint32_t added = 0;
  for (std::uint32_t p = 0; p < it->second.have.size(); ++p) {
    if (addPiece(file, p)) ++added;
  }
  return added;
}

void PieceStore::removeFile(FileId file) {
  auto it = entries_.find(file);
  if (it == entries_.end()) return;
  totalHeld_ -= it->second.held;
  entries_.erase(it);
}

bool PieceStore::isRegistered(FileId file) const {
  return entries_.contains(file);
}

bool PieceStore::hasPiece(FileId file, std::uint32_t piece) const {
  auto it = entries_.find(file);
  if (it == entries_.end()) return false;
  return piece < it->second.have.size() && it->second.have[piece];
}

bool PieceStore::isComplete(FileId file) const {
  auto it = entries_.find(file);
  if (it == entries_.end()) return false;
  return it->second.held == it->second.have.size();
}

std::uint32_t PieceStore::piecesHeld(FileId file) const {
  auto it = entries_.find(file);
  return it == entries_.end() ? 0 : it->second.held;
}

std::uint32_t PieceStore::pieceCount(FileId file) const {
  auto it = entries_.find(file);
  return it == entries_.end()
             ? 0
             : static_cast<std::uint32_t>(it->second.have.size());
}

std::vector<std::uint32_t> PieceStore::missingPieces(FileId file) const {
  std::vector<std::uint32_t> out;
  auto it = entries_.find(file);
  if (it == entries_.end()) return out;
  for (std::uint32_t p = 0; p < it->second.have.size(); ++p) {
    if (!it->second.have[p]) out.push_back(p);
  }
  return out;
}

std::vector<FileId> PieceStore::files() const {
  std::vector<FileId> out;
  out.reserve(entries_.size());
  for (const auto& [file, _] : entries_) out.push_back(file);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<FileId> PieceStore::completeFiles() const {
  std::vector<FileId> out;
  for (const auto& [file, e] : entries_) {
    if (e.held == e.have.size()) out.push_back(file);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void PieceStore::setPriority(FileId file, double priority) {
  auto it = entries_.find(file);
  if (it != entries_.end()) it->second.priority = priority;
}

void PieceStore::evictOnePiece() {
  // Victim: lowest-priority *incomplete* file holding at least one piece;
  // complete files are preferred survivors since they are servable. Falls
  // back to the lowest-priority complete file when everything is complete.
  const Entry* victimEntry = nullptr;
  FileId victim;
  auto better = [](const Entry& candidate, const Entry* incumbent) {
    if (incumbent == nullptr) return true;
    if (candidate.priority != incumbent->priority) {
      return candidate.priority < incumbent->priority;
    }
    // Equal priority: evict the oldest registration. The seq tie-break is
    // total (seqs are unique), so victim choice is independent of hash-map
    // iteration order — checkpoint determinism depends on this.
    return candidate.seq < incumbent->seq;
  };
  for (const auto& [file, e] : entries_) {
    if (e.held == 0 || e.held == e.have.size()) continue;
    if (better(e, victimEntry)) {
      victimEntry = &e;
      victim = file;
    }
  }
  if (victimEntry == nullptr) {
    for (const auto& [file, e] : entries_) {
      if (e.held == 0) continue;
      if (better(e, victimEntry)) {
        victimEntry = &e;
        victim = file;
      }
    }
  }
  if (victimEntry == nullptr) return;
  Entry& e = entries_[victim];
  for (std::uint32_t p = static_cast<std::uint32_t>(e.have.size()); p > 0;
       --p) {
    if (e.have[p - 1]) {
      e.have[p - 1] = false;
      --e.held;
      --totalHeld_;
      return;
    }
  }
}

void PieceStore::saveState(Serializer& out) const {
  const std::vector<FileId> sorted = files();
  out.u64(sorted.size());
  for (const FileId file : sorted) {
    const Entry& e = entries_.at(file);
    out.u32(file.value);
    out.u64(e.have.size());
    for (std::size_t p = 0; p < e.have.size(); ++p) {
      out.boolean(e.have[p]);
    }
    out.f64(e.priority);
    out.u64(e.seq);
  }
  out.u64(nextSeq_);
}

void PieceStore::loadState(Deserializer& in) {
  entries_.clear();
  totalHeld_ = 0;
  const std::size_t count = in.length();
  for (std::size_t i = 0; i < count; ++i) {
    const FileId file{in.u32()};
    Entry e;
    e.have.resize(in.length());
    for (std::size_t p = 0; p < e.have.size(); ++p) {
      const bool held = in.boolean();
      e.have[p] = held;
      if (held) ++e.held;
    }
    e.priority = in.f64();
    e.seq = in.u64();
    totalHeld_ += e.held;
    entries_.emplace(file, std::move(e));
  }
  nextSeq_ = in.u64();
}

}  // namespace hdtn::core
