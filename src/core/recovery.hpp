// Self-healing protocol layer: the data structures behind in-protocol
// recovery from injected faults.
//
// PR 3's fault subsystem makes transmissions fail; this layer makes the
// protocols fight back, in three mechanisms the engine wires into contact
// processing (see docs/RECOVERY.md):
//
//   * contact-level reliable transfer — every deliverable frame a contact
//     loses (metadata record or piece, per receiver) is remembered in a
//     per-contact RecoverySession. At the end of the contact the session
//     replays the losses in FIFO order under a deterministic
//     backoff-charged slot budget; frames whose retries are exhausted or
//     unaffordable spill into the cross-contact RecoveryState and are
//     served at the next re-contact of the same (sender, receiver) pair.
//   * coordinator failover — handled entirely in the engine (the clique
//     coordinator is positional); RecoveryParams only carries the knob.
//   * anti-entropy repair — on contact, a receiver summarises its held
//     metadata and pieces in a SummaryVector (a Bloom filter over stable
//     per-record keys; no false negatives, so "not mayContain" proves the
//     record is absent) and peers push query-matching records the summary
//     proves missing, under a per-contact budget.
//
// Determinism: none of these structures draw randomness. Queues are FIFO,
// maps are ordered, and the retransmission fault re-draws happen in the
// engine in simulation order. With RecoveryParams::enabled() false the
// engine constructs no RecoveryState at all (the same zero-cost null path
// FaultPlan uses), keeping clean runs byte-identical.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/util/bloom.hpp"
#include "src/util/serialize.hpp"
#include "src/util/types.hpp"

namespace hdtn::core {

/// Piece index standing in for "the metadata frame" in a LostFrame.
inline constexpr std::uint32_t kMetadataFrameIndex = 0xffffffffu;

/// Piece index standing in for "one coded frame of the file's generation"
/// in a LostFrame (coded download mode). Redelivery sends a *fresh* random
/// combination rather than replaying the lost frame — any independent
/// combination is equally useful to the receiver's decoder.
inline constexpr std::uint32_t kCodedFrameIndex = 0xfffffffeu;

struct RecoveryParams {
  /// In-contact retransmission attempts per lost frame; 0 disables
  /// reliable transfer entirely (no sessions, no loss bookkeeping).
  int maxRetries = 0;
  /// Backoff-slot budget per contact for retransmissions. Attempt k of a
  /// frame costs 2^min(k, 3) slots, so repeat offenders back off and one
  /// hot frame cannot starve the rest of the queue.
  int retransmitBudget = 16;
  /// Anti-entropy transfers allowed per contact; 0 disables repair.
  int repairPerContact = 0;
  /// Per-sender cap on cross-contact pending retransmissions; the oldest
  /// entry is shed when a new loss would exceed it.
  std::size_t repairQueueLimit = 64;
  /// When a clique coordinator churns down mid-round, surviving members
  /// elect the first live node of the hello-derived member order instead
  /// of abandoning the broadcast round.
  bool coordinatorFailover = false;

  /// True when any recovery mechanism can act. The engine only constructs
  /// a RecoveryState for enabled params, so an all-zero configuration is
  /// byte-identical to a run without recovery support.
  [[nodiscard]] bool enabled() const;

  /// One descriptive message per violation (empty when valid).
  [[nodiscard]] std::vector<std::string> validate() const;
};

/// One deliverable frame a contact failed to deliver: a metadata record
/// (piece == kMetadataFrameIndex) or one piece, for one receiver.
struct LostFrame {
  NodeId sender;
  NodeId receiver;
  FileId file;
  std::uint32_t piece = kMetadataFrameIndex;
  /// Whether the receiver had requested the frame when it was lost (drives
  /// the credit split on redelivery; metadata recomputes it at delivery).
  bool requested = false;
  /// Retransmission attempts already charged for this frame.
  int attempts = 0;

  [[nodiscard]] bool isMetadata() const { return piece == kMetadataFrameIndex; }
};

/// Per-contact reliable-transfer session. The engine notes every lost
/// deliverable frame during the discovery/download phases, then replays
/// them FIFO at the end of the contact: nextRetry() charges each attempt's
/// backoff cost against the slot budget and stops deterministically when
/// the budget cannot afford the frame at the head of the queue.
class RecoverySession {
 public:
  RecoverySession(int maxRetries, int budgetSlots)
      : maxRetries_(maxRetries), budgetLeft_(budgetSlots) {}

  /// Records a frame lost in the current contact. No-op when retries are
  /// disabled.
  void noteLoss(LostFrame frame) {
    if (maxRetries_ <= 0) return;
    queue_.push_back(frame);
  }

  /// Pops the next frame to retransmit, charging its backoff cost; nullopt
  /// when the queue is empty or the head frame is unaffordable.
  [[nodiscard]] std::optional<LostFrame> nextRetry();

  /// Puts a frame whose retransmission failed back at the queue tail (the
  /// caller increments attempts first); dropped when retries are spent.
  void requeue(LostFrame frame) {
    if (frame.attempts >= maxRetries_) return;
    queue_.push_back(frame);
  }

  /// Frames still queued when the contact ended (budget exhausted); they
  /// move to the cross-contact RecoveryState.
  [[nodiscard]] std::vector<LostFrame> drainRemaining();

  [[nodiscard]] std::size_t queued() const { return queue_.size(); }
  [[nodiscard]] int budgetLeft() const { return budgetLeft_; }

  /// Slot cost of one retransmission attempt: 2^min(attempts, 3).
  [[nodiscard]] static int attemptCost(int attempts);

 private:
  int maxRetries_;
  int budgetLeft_;
  std::deque<LostFrame> queue_;
};

/// Cross-contact recovery state: frames that exhausted a contact's budget,
/// kept per sender (bounded, oldest-shed) until the sender and receiver
/// meet again. Checkpointed with the engine (insertion order is part of
/// the deterministic state).
class RecoveryState {
 public:
  explicit RecoveryState(std::size_t queueLimit) : queueLimit_(queueLimit) {}

  /// Queues a frame for retransmission at the next (sender, receiver)
  /// re-contact; attempts restart from zero. Sheds the sender's oldest
  /// pending frame when the per-sender cap is hit.
  void addPending(LostFrame frame);

  /// Removes and returns (insertion-ordered) every pending frame from
  /// `sender` to `receiver`.
  [[nodiscard]] std::vector<LostFrame> takePending(NodeId sender,
                                                  NodeId receiver);

  /// True when `sender` has any pending frame (cheap pre-check).
  [[nodiscard]] bool hasPending(NodeId sender) const {
    return pending_.find(sender) != pending_.end();
  }

  [[nodiscard]] std::size_t pendingCount() const;

  void saveState(Serializer& out) const;
  void loadState(Deserializer& in);

 private:
  std::size_t queueLimit_;
  /// Ordered by sender so serialization is canonical.
  std::map<NodeId, std::vector<LostFrame>> pending_;
};

/// Compact summary of "what I already hold" exchanged during anti-entropy
/// repair: a Bloom filter over stable keys for metadata records and
/// (file, piece) pairs. No false negatives, so a negative membership test
/// proves the peer lacks the record and the repair push is never wasted on
/// something already held; false positives (~1%) only make repair skip an
/// occasional genuinely-missing record, costing delivery, never safety.
class SummaryVector {
 public:
  explicit SummaryVector(std::size_t expectedElements)
      : filter_(BloomFilter::forCapacity(std::max<std::size_t>(16, expectedElements),
                                         0.01)) {}

  [[nodiscard]] static std::uint64_t metadataKey(FileId file);
  [[nodiscard]] static std::uint64_t pieceKey(FileId file, std::uint32_t piece);

  void insert(std::uint64_t key) { filter_.insert(key); }
  [[nodiscard]] bool mayContain(std::uint64_t key) const {
    return filter_.mayContain(key);
  }

 private:
  BloomFilter filter_;
};

}  // namespace hdtn::core
