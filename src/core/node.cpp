#include "src/core/node.hpp"

#include <algorithm>
#include <set>

#include "src/util/string_util.hpp"

namespace hdtn::core {

Node::Node(NodeId id, NodeOptions options)
    : id_(id),
      options_(options),
      pieces_(options.pieceCapacity > 0 ? PieceStore(options.pieceCapacity)
                                        : PieceStore()) {}

void Node::addQuery(const Query& query) {
  QueryState state;
  state.query = query;
  state.tokens = keywordTokens(query.text);
  queries_.push_back(std::move(state));
  touch();
}

const std::vector<std::string>& Node::activeQueryTexts(SimTime now) const {
  auto& cache = activeTextsCache_;
  if (cache.generation != stateGen_ || cache.at != now) {
    cache.value.clear();
    for (const QueryState& qs : queries_) {
      if (qs.metadataFound || qs.query.expired(now)) continue;
      cache.value.push_back(qs.query.text);
    }
    cache.generation = stateGen_;
    cache.at = now;
  }
  return cache.value;
}

const std::vector<std::vector<std::string>>& Node::contactQueryTokens(
    SimTime now, bool includeProxied) const {
  auto& own = ownTokensCache_;
  if (own.generation != stateGen_ || own.at != now) {
    own.value.clear();
    for (const QueryState& qs : queries_) {
      if (qs.metadataFound || qs.query.expired(now)) continue;
      own.value.push_back(qs.tokens);
    }
    own.generation = stateGen_;
    own.at = now;
  }
  if (!includeProxied) return own.value;

  auto& combined = combinedTokensCache_;
  if (combined.generation != stateGen_ || combined.at != now) {
    combined.value = own.value;
    for (const std::string& text : proxiedQueryTexts(now)) {
      combined.value.push_back(keywordTokens(text));
    }
    combined.generation = stateGen_;
    combined.at = now;
  }
  return combined.value;
}

std::vector<FileId> Node::wantedFiles(SimTime now) const {
  std::set<FileId> wanted;
  for (const QueryState& qs : queries_) {
    if (!qs.metadataFound || qs.fileFound || qs.query.expired(now)) continue;
    if (pieces_.isComplete(qs.chosenFile)) continue;
    wanted.insert(qs.chosenFile);
  }
  return {wanted.begin(), wanted.end()};
}

bool Node::anyQueryMatches(const Metadata& md, SimTime now) const {
  return std::any_of(queries_.begin(), queries_.end(),
                     [&](const QueryState& qs) {
                       return !qs.metadataFound && !qs.query.expired(now) &&
                              queryTokensMatch(qs.tokens, md);
                     });
}

std::vector<QueryId> Node::acceptMetadata(const Metadata& md, SimTime now) {
  std::vector<QueryId> selected;
  if (md.expired(now)) return selected;
  if (verifier_ && !verifier_(md)) {
    rejectedMetadata_.insert(md.file);
    return selected;
  }
  touch();
  metadata_.add(md);
  for (QueryState& qs : queries_) {
    if (qs.metadataFound || qs.query.expired(now)) continue;
    if (!queryTokensMatch(qs.tokens, md)) continue;
    // The simulated user examines the match and selects it for download.
    qs.metadataFound = true;
    qs.chosenFile = md.file;
    pieces_.registerFile(md.file, md.pieceCount());
    pieces_.setPriority(md.file, md.popularity);
    selected.push_back(qs.query.id);
  }
  return selected;
}

std::vector<QueryId> Node::acceptPiece(FileId file, std::uint32_t piece,
                                       std::uint32_t pieceCount,
                                       SimTime now) {
  std::vector<QueryId> satisfied;
  pieces_.registerFile(file, pieceCount);
  pieces_.addPiece(file, piece);
  if (!pieces_.isComplete(file)) return satisfied;
  touch();
  for (QueryState& qs : queries_) {
    if (!qs.metadataFound || qs.fileFound || qs.chosenFile != file) continue;
    if (qs.query.expired(now)) continue;
    qs.fileFound = true;
    satisfied.push_back(qs.query.id);
  }
  return satisfied;
}

void Node::noteRejectedFrom(NodeId sender) {
  if (++rejectionsFrom_[sender] >= kDistrustThreshold) {
    distrustedPeers_.insert(sender);
  }
}

void Node::expire(SimTime now) {
  metadata_.expire(now);
  const auto droppedQueries = std::erase_if(peerQueries_, [&](const auto& kv) {
    return now - kv.second.storedAt > cooperativeTtl_;
  });
  std::erase_if(peerWants_, [&](const auto& kv) {
    return now - kv.second > cooperativeTtl_;
  });
  if (droppedQueries > 0) touch();
}

void Node::setFrequentContacts(std::vector<NodeId> contacts) {
  std::sort(contacts.begin(), contacts.end());
  frequentContacts_ = std::move(contacts);
}

bool Node::isFrequentContact(NodeId peer) const {
  return std::binary_search(frequentContacts_.begin(),
                            frequentContacts_.end(), peer);
}

void Node::storePeerQueries(NodeId peer, std::vector<std::string> texts,
                            SimTime now) {
  if (!isFrequentContact(peer)) return;
  peerQueries_[peer] = StoredQueries{std::move(texts), now};
  touch();
}

const std::vector<std::string>& Node::proxiedQueryTexts(SimTime now) const {
  auto& cache = proxiedTextsCache_;
  if (cache.generation != stateGen_ || cache.at != now) {
    std::set<std::string> texts;
    for (const auto& [peer, stored] : peerQueries_) {
      if (now - stored.storedAt > cooperativeTtl_) continue;
      texts.insert(stored.texts.begin(), stored.texts.end());
    }
    cache.value.assign(texts.begin(), texts.end());
    cache.generation = stateGen_;
    cache.at = now;
  }
  return cache.value;
}

void Node::storePeerWants(const std::vector<Uri>& uris, SimTime now) {
  for (const Uri& uri : uris) peerWants_[uri] = now;
}

std::vector<Uri> Node::peerWantedUris(SimTime now) const {
  std::vector<Uri> out;
  for (const auto& [uri, when] : peerWants_) {
    if (now - when > cooperativeTtl_) continue;
    out.push_back(uri);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace hdtn::core
