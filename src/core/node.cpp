#include "src/core/node.hpp"

#include <algorithm>
#include <set>

#include "src/util/string_util.hpp"

namespace hdtn::core {

Node::Node(NodeId id, NodeOptions options)
    : id_(id),
      options_(options),
      metadata_(options.metadataCapacity > 0
                    ? MetadataStore(options.metadataCapacity)
                    : MetadataStore()),
      pieces_(options.pieceCapacity > 0 ? PieceStore(options.pieceCapacity)
                                        : PieceStore()) {}

void Node::addQuery(const Query& query) {
  QueryState state;
  state.query = query;
  state.tokens = keywordTokens(query.text);
  queries_.push_back(std::move(state));
  touch();
}

const std::vector<std::string>& Node::activeQueryTexts(SimTime now) const {
  auto& cache = activeTextsCache_;
  if (cache.generation != stateGen_ || cache.at != now) {
    cache.value.clear();
    for (const QueryState& qs : queries_) {
      if (qs.metadataFound || qs.query.expired(now)) continue;
      cache.value.push_back(qs.query.text);
    }
    cache.generation = stateGen_;
    cache.at = now;
  }
  return cache.value;
}

const std::vector<std::vector<std::string>>& Node::contactQueryTokens(
    SimTime now, bool includeProxied) const {
  auto& own = ownTokensCache_;
  if (own.generation != stateGen_ || own.at != now) {
    own.value.clear();
    for (const QueryState& qs : queries_) {
      if (qs.metadataFound || qs.query.expired(now)) continue;
      own.value.push_back(qs.tokens);
    }
    own.generation = stateGen_;
    own.at = now;
  }
  if (!includeProxied) return own.value;

  auto& combined = combinedTokensCache_;
  if (combined.generation != stateGen_ || combined.at != now) {
    combined.value = own.value;
    for (const std::string& text : proxiedQueryTexts(now)) {
      combined.value.push_back(keywordTokens(text));
    }
    combined.generation = stateGen_;
    combined.at = now;
  }
  return combined.value;
}

std::vector<FileId> Node::wantedFiles(SimTime now) const {
  return wantedFilesView(now);
}

const std::vector<FileId>& Node::wantedFilesView(SimTime now) const {
  // Completing a file and selecting metadata both touch(); a piece arriving
  // without completing the file leaves the wanted set unchanged, so the
  // (generation, now) key is sound.
  auto& cache = wantedCache_;
  if (cache.generation != stateGen_ || cache.at != now) {
    std::set<FileId> wanted;
    for (const QueryState& qs : queries_) {
      if (!qs.metadataFound || qs.fileFound || qs.query.expired(now)) {
        continue;
      }
      if (pieces_.isComplete(qs.chosenFile)) continue;
      wanted.insert(qs.chosenFile);
    }
    cache.value.assign(wanted.begin(), wanted.end());
    cache.generation = stateGen_;
    cache.at = now;
  }
  return cache.value;
}

bool Node::anyQueryMatches(const Metadata& md, SimTime now) const {
  return std::any_of(queries_.begin(), queries_.end(),
                     [&](const QueryState& qs) {
                       return !qs.metadataFound && !qs.query.expired(now) &&
                              queryTokensMatch(qs.tokens, md);
                     });
}

std::vector<QueryId> Node::acceptMetadata(const Metadata& md, SimTime now) {
  std::vector<QueryId> selected;
  if (md.expired(now)) return selected;
  if (verifier_ && !verifier_(md)) {
    rejectedMetadata_.insert(md.file);
    return selected;
  }
  touch();
  metadata_.add(md);
  // A bounded store may shed the incoming record under capacity pressure;
  // a record that was never stored must not be selected for download.
  if (!metadata_.has(md.file)) return selected;
  for (QueryState& qs : queries_) {
    if (qs.metadataFound || qs.query.expired(now)) continue;
    if (!queryTokensMatch(qs.tokens, md)) continue;
    // The simulated user examines the match and selects it for download.
    qs.metadataFound = true;
    qs.chosenFile = md.file;
    pieces_.registerFile(md.file, md.pieceCount());
    pieces_.setPriority(md.file, md.popularity);
    selected.push_back(qs.query.id);
  }
  return selected;
}

std::vector<QueryId> Node::acceptPiece(FileId file, std::uint32_t piece,
                                       std::uint32_t pieceCount,
                                       SimTime now) {
  std::vector<QueryId> satisfied;
  pieces_.registerFile(file, pieceCount);
  pieces_.addPiece(file, piece);
  if (!pieces_.isComplete(file)) return satisfied;
  touch();
  for (QueryState& qs : queries_) {
    if (!qs.metadataFound || qs.fileFound || qs.chosenFile != file) continue;
    if (qs.query.expired(now)) continue;
    qs.fileFound = true;
    satisfied.push_back(qs.query.id);
  }
  return satisfied;
}

void Node::noteRejectedFrom(NodeId sender) {
  if (++rejectionsFrom_[sender] >= kDistrustThreshold) {
    distrustedPeers_.insert(sender);
  }
}

void Node::expire(SimTime now) {
  metadata_.expire(now);
  const auto droppedQueries = std::erase_if(peerQueries_, [&](const auto& kv) {
    return now - kv.second.storedAt > cooperativeTtl_;
  });
  std::erase_if(peerWants_, [&](const auto& kv) {
    return now - kv.second > cooperativeTtl_;
  });
  if (droppedQueries > 0) touch();
}

void Node::setFrequentContacts(std::vector<NodeId> contacts) {
  std::sort(contacts.begin(), contacts.end());
  frequentContacts_ = std::move(contacts);
}

bool Node::isFrequentContact(NodeId peer) const {
  return std::binary_search(frequentContacts_.begin(),
                            frequentContacts_.end(), peer);
}

void Node::storePeerQueries(NodeId peer, std::vector<std::string> texts,
                            SimTime now) {
  if (!isFrequentContact(peer)) return;
  peerQueries_[peer] = StoredQueries{std::move(texts), now};
  touch();
}

const std::vector<std::string>& Node::proxiedQueryTexts(SimTime now) const {
  auto& cache = proxiedTextsCache_;
  if (cache.generation != stateGen_ || cache.at != now) {
    std::set<std::string> texts;
    for (const auto& [peer, stored] : peerQueries_) {
      if (now - stored.storedAt > cooperativeTtl_) continue;
      texts.insert(stored.texts.begin(), stored.texts.end());
    }
    cache.value.assign(texts.begin(), texts.end());
    cache.generation = stateGen_;
    cache.at = now;
  }
  return cache.value;
}

void Node::storePeerWants(const std::vector<Uri>& uris, SimTime now) {
  for (const Uri& uri : uris) peerWants_[uri] = now;
}

std::vector<Uri> Node::peerWantedUris(SimTime now) const {
  std::vector<Uri> out;
  for (const auto& [uri, when] : peerWants_) {
    if (now - when > cooperativeTtl_) continue;
    out.push_back(uri);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void Node::saveState(Serializer& out) const {
  metadata_.saveState(out);
  pieces_.saveState(out);
  credits_.saveState(out);

  out.u64(queries_.size());
  for (const QueryState& qs : queries_) {
    out.u32(qs.query.id.value);
    out.u32(qs.query.owner.value);
    out.str(qs.query.text);
    out.u32(qs.query.target.value);
    out.i64(qs.query.issuedAt);
    out.i64(qs.query.ttl);
    out.boolean(qs.metadataFound);
    out.u32(qs.chosenFile.value);
    out.boolean(qs.fileFound);
  }

  // Unordered containers are written in sorted order so checkpoint bytes
  // are deterministic (iteration order is behavior-neutral elsewhere).
  std::vector<FileId> rejected(rejectedMetadata_.begin(),
                               rejectedMetadata_.end());
  std::sort(rejected.begin(), rejected.end());
  out.u64(rejected.size());
  for (const FileId file : rejected) out.u32(file.value);

  std::vector<std::pair<NodeId, int>> rejections(rejectionsFrom_.begin(),
                                                 rejectionsFrom_.end());
  std::sort(rejections.begin(), rejections.end());
  out.u64(rejections.size());
  for (const auto& [peer, count] : rejections) {
    out.u32(peer.value);
    out.i64(count);
  }

  std::vector<NodeId> distrusted(distrustedPeers_.begin(),
                                 distrustedPeers_.end());
  std::sort(distrusted.begin(), distrusted.end());
  out.u64(distrusted.size());
  for (const NodeId peer : distrusted) out.u32(peer.value);

  std::vector<std::pair<NodeId, const StoredQueries*>> stored;
  stored.reserve(peerQueries_.size());
  for (const auto& [peer, sq] : peerQueries_) stored.emplace_back(peer, &sq);
  std::sort(stored.begin(), stored.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  out.u64(stored.size());
  for (const auto& [peer, sq] : stored) {
    out.u32(peer.value);
    out.u64(sq->texts.size());
    for (const std::string& text : sq->texts) out.str(text);
    out.i64(sq->storedAt);
  }

  std::vector<std::pair<Uri, SimTime>> wants(peerWants_.begin(),
                                             peerWants_.end());
  std::sort(wants.begin(), wants.end());
  out.u64(wants.size());
  for (const auto& [uri, when] : wants) {
    out.str(uri);
    out.i64(when);
  }
}

void Node::loadState(Deserializer& in) {
  metadata_.loadState(in);
  pieces_.loadState(in);
  credits_.loadState(in);

  queries_.clear();
  const std::size_t queryCount = in.length();
  queries_.reserve(queryCount);
  for (std::size_t i = 0; i < queryCount; ++i) {
    QueryState qs;
    qs.query.id = QueryId{in.u32()};
    qs.query.owner = NodeId{in.u32()};
    qs.query.text = in.str();
    qs.query.target = FileId{in.u32()};
    qs.query.issuedAt = in.i64();
    qs.query.ttl = in.i64();
    qs.tokens = keywordTokens(qs.query.text);
    qs.metadataFound = in.boolean();
    qs.chosenFile = FileId{in.u32()};
    qs.fileFound = in.boolean();
    queries_.push_back(std::move(qs));
  }

  rejectedMetadata_.clear();
  const std::size_t rejectedCount = in.length();
  for (std::size_t i = 0; i < rejectedCount; ++i) {
    rejectedMetadata_.insert(FileId{in.u32()});
  }

  rejectionsFrom_.clear();
  const std::size_t rejectionCount = in.length();
  for (std::size_t i = 0; i < rejectionCount; ++i) {
    const NodeId peer{in.u32()};
    rejectionsFrom_[peer] = static_cast<int>(in.i64());
  }

  distrustedPeers_.clear();
  const std::size_t distrustCount = in.length();
  for (std::size_t i = 0; i < distrustCount; ++i) {
    distrustedPeers_.insert(NodeId{in.u32()});
  }

  peerQueries_.clear();
  const std::size_t storedCount = in.length();
  for (std::size_t i = 0; i < storedCount; ++i) {
    const NodeId peer{in.u32()};
    StoredQueries sq;
    sq.texts.resize(in.length());
    for (std::string& text : sq.texts) text = in.str();
    sq.storedAt = in.i64();
    peerQueries_.emplace(peer, std::move(sq));
  }

  peerWants_.clear();
  const std::size_t wantCount = in.length();
  for (std::size_t i = 0; i < wantCount; ++i) {
    Uri uri = in.str();
    peerWants_[std::move(uri)] = in.i64();
  }

  touch();
}

}  // namespace hdtn::core
