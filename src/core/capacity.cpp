#include "src/core/capacity.hpp"

#include <cassert>

namespace hdtn::core {

double analyticBroadcastCapacity(int n) {
  assert(n >= 1);
  if (n < 2) return 0.0;
  return static_cast<double>(n - 1) / static_cast<double>(n);
}

double analyticPairwiseCapacity(int n) {
  assert(n >= 1);
  if (n < 2) return 0.0;
  return 1.0 / static_cast<double>(n);
}

ContentionResult simulatePairwiseContention(const ContentionParams& params) {
  assert(params.nodes >= 2);
  assert(params.slots > 0);
  Rng rng(params.seed);
  std::int64_t successes = 0;
  std::int64_t collisions = 0;
  std::int64_t idle = 0;
  for (int slot = 0; slot < params.slots; ++slot) {
    int transmitters = 0;
    for (int node = 0; node < params.nodes; ++node) {
      if (rng.chance(params.attemptProbability)) ++transmitters;
    }
    if (transmitters == 0) {
      ++idle;
    } else if (transmitters == 1) {
      ++successes;  // exactly one receiver hears one piece
    } else {
      ++collisions;
    }
  }
  ContentionResult result;
  const auto slots = static_cast<double>(params.slots);
  result.perNodeGoodput =
      static_cast<double>(successes) / slots / params.nodes;
  result.collisionFraction = static_cast<double>(collisions) / slots;
  result.idleFraction = static_cast<double>(idle) / slots;
  return result;
}

ContentionResult simulateBroadcastSchedule(const ContentionParams& params) {
  assert(params.nodes >= 2);
  assert(params.slots > 0);
  // One scheduled sender per slot, n-1 receivers, no collisions: the result
  // is deterministic, but we keep the same interface for symmetry.
  ContentionResult result;
  result.perNodeGoodput =
      static_cast<double>(params.nodes - 1) / params.nodes;
  result.collisionFraction = 0.0;
  result.idleFraction = 0.0;
  return result;
}

double optimalAttemptProbability(int n) {
  assert(n >= 1);
  return 1.0 / static_cast<double>(n);
}

}  // namespace hdtn::core
