// The Internet side of the hybrid DTN.
//
// "A hybrid DTN is a DTN that surrounds the Internet" (Section III-A): the
// Internet is the sole source of files, hosts the metadata server, and
// maintains global metadata popularity. Internet-access nodes interact with
// these services directly; everyone else reaches them only through DTN
// cooperation.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/file_catalog.hpp"
#include "src/core/metadata.hpp"
#include "src/core/query.hpp"
#include "src/util/random.hpp"
#include "src/util/serialize.hpp"
#include "src/util/types.hpp"

namespace hdtn::obs {
class EngineObserver;  // src/obs/events.hpp
}

namespace hdtn::core {

/// Sliding-window popularity observation: the paper suggests defining
/// popularity as "the percentage of Internet access nodes requesting the
/// file of the metadata in the past 24 hours".
class PopularityTable {
 public:
  explicit PopularityTable(Duration window = kDay) : window_(window) {}

  /// Records that `requester` asked to download `file` at `now`.
  void recordRequest(FileId file, NodeId requester, SimTime now);

  /// Distinct requesters within the window ending at `now`, divided by
  /// `population`. Returns 0 for unknown files or zero population.
  [[nodiscard]] double observed(FileId file, SimTime now,
                                std::size_t population) const;

  /// Total requests ever recorded for `file`.
  [[nodiscard]] std::size_t totalRequests(FileId file) const;

  /// Checkpoints all request events (file-id ascending; per-file deques
  /// keep their order).
  void saveState(Serializer& out) const;
  void loadState(Deserializer& in);

 private:
  struct Event {
    SimTime when;
    NodeId who;
  };
  Duration window_;
  std::unordered_map<FileId, std::deque<Event>> events_;
};

class InternetServices {
 public:
  InternetServices();

  [[nodiscard]] PublisherRegistry& registry() { return registry_; }
  [[nodiscard]] const PublisherRegistry& registry() const {
    return registry_;
  }
  [[nodiscard]] FileCatalog& catalog() { return catalog_; }
  [[nodiscard]] const FileCatalog& catalog() const { return catalog_; }
  [[nodiscard]] PopularityTable& popularity() { return popularity_; }

  /// Publishes through the catalog (registering the publisher first when
  /// unknown, with a derived secret). Emits kFilePublished when an observer
  /// is attached (time = publishedAt, value = popularity).
  FileId publish(const FileCatalog::PublishRequest& request);

  /// Attaches a non-owning observer notified of publications; nullptr
  /// detaches. The engine forwards its own observer here.
  void setObserver(obs::EngineObserver* observer) { observer_ = observer; }

  /// Server-side keyword search over metadata of files alive at `now`,
  /// ranked like the node-local search (popularity first).
  [[nodiscard]] std::vector<RankedMatch> search(const std::string& queryText,
                                                SimTime now) const;

  /// Metadata of alive files in decreasing popularity, at most `limit`.
  [[nodiscard]] std::vector<const Metadata*> topPopular(
      SimTime now, std::size_t limit) const;

  [[nodiscard]] const Metadata* metadataForUri(const Uri& uri) const;

  /// Checkpoints the catalog (as publish requests carrying the *current*
  /// popularity) and the popularity table. loadState re-publishes every
  /// file in order on an empty catalog, reproducing identical FileIds,
  /// URIs, piece checksums, auth tags, and registry secrets (the auth
  /// payload does not cover popularity). Must be called with no observer
  /// attached so the replayed publications emit no events.
  void saveState(Serializer& out) const;
  void loadState(Deserializer& in);

 private:
  PublisherRegistry registry_;
  FileCatalog catalog_;
  PopularityTable popularity_;
  obs::EngineObserver* observer_ = nullptr;
};

/// Parameters for one day's synthetic publication batch (Section VI-A: "a
/// number n of new files are generated on the Internet every day at 2PM").
struct SyntheticBatchParams {
  int count = 40;
  SimTime publishedAt = 0;
  Duration ttl = 3 * kDay;
  /// Popularity distribution shape; the paper uses lambda = count / 2.
  double lambda = 20.0;
  std::uint32_t piecesPerFile = 1;
  std::uint32_t pieceSizeBytes = 1024;
};

/// Publishes `params.count` files with names drawn from a publisher/topic
/// vocabulary and popularity from the paper's distribution. Returns the new
/// file ids in publication order.
std::vector<FileId> publishSyntheticBatch(InternetServices& internet,
                                          const SyntheticBatchParams& params,
                                          Rng& rng);

/// The ground-truth query string a user interested in this file would type:
/// distinctive enough to identify the file (topic + unique episode token).
[[nodiscard]] std::string canonicalQueryText(const FileInfo& info);

}  // namespace hdtn::core
