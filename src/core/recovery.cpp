#include "src/core/recovery.hpp"

#include <algorithm>

namespace hdtn::core {

namespace {

// SplitMix64 finalizer: distinct salts keep metadata keys and piece keys
// from colliding structurally inside one summary vector.
constexpr std::uint64_t kMetadataKeySalt = 0x9e3779b97f4a7c15ull;
constexpr std::uint64_t kPieceKeySalt = 0xbf58476d1ce4e5b9ull;

std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

void saveFrame(Serializer& out, const LostFrame& frame) {
  out.u32(frame.sender.value);
  out.u32(frame.receiver.value);
  out.u32(frame.file.value);
  out.u32(frame.piece);
  out.boolean(frame.requested);
  out.i64(frame.attempts);
}

LostFrame loadFrame(Deserializer& in) {
  LostFrame frame;
  frame.sender = NodeId{in.u32()};
  frame.receiver = NodeId{in.u32()};
  frame.file = FileId{in.u32()};
  frame.piece = in.u32();
  frame.requested = in.boolean();
  frame.attempts = static_cast<int>(in.i64());
  return frame;
}

}  // namespace

bool RecoveryParams::enabled() const {
  return maxRetries > 0 || repairPerContact > 0 || coordinatorFailover;
}

std::vector<std::string> RecoveryParams::validate() const {
  std::vector<std::string> errors;
  if (maxRetries < 0) {
    errors.push_back("maxRetries must be >= 0, got " +
                     std::to_string(maxRetries));
  }
  if (maxRetries > 0 && retransmitBudget < 1) {
    errors.push_back(
        "retransmitBudget must be >= 1 when maxRetries is set, got " +
        std::to_string(retransmitBudget));
  }
  if (repairPerContact < 0) {
    errors.push_back("repairPerContact must be >= 0, got " +
                     std::to_string(repairPerContact));
  }
  if (repairQueueLimit < 1) {
    errors.push_back("repairQueueLimit must be >= 1, got " +
                     std::to_string(repairQueueLimit));
  }
  return errors;
}

int RecoverySession::attemptCost(int attempts) {
  return 1 << std::min(attempts, 3);
}

std::optional<LostFrame> RecoverySession::nextRetry() {
  if (queue_.empty()) return std::nullopt;
  const int cost = attemptCost(queue_.front().attempts);
  if (cost > budgetLeft_) return std::nullopt;
  budgetLeft_ -= cost;
  LostFrame frame = queue_.front();
  queue_.pop_front();
  return frame;
}

std::vector<LostFrame> RecoverySession::drainRemaining() {
  std::vector<LostFrame> out(queue_.begin(), queue_.end());
  queue_.clear();
  return out;
}

void RecoveryState::addPending(LostFrame frame) {
  frame.attempts = 0;
  std::vector<LostFrame>& queue = pending_[frame.sender];
  if (queue.size() >= queueLimit_) queue.erase(queue.begin());
  queue.push_back(frame);
}

std::vector<LostFrame> RecoveryState::takePending(NodeId sender,
                                                  NodeId receiver) {
  auto it = pending_.find(sender);
  if (it == pending_.end()) return {};
  std::vector<LostFrame> taken;
  std::vector<LostFrame>& queue = it->second;
  auto keep = queue.begin();
  for (LostFrame& frame : queue) {
    if (frame.receiver == receiver) {
      taken.push_back(frame);
    } else {
      *keep++ = frame;
    }
  }
  queue.erase(keep, queue.end());
  if (queue.empty()) pending_.erase(it);
  return taken;
}

std::size_t RecoveryState::pendingCount() const {
  std::size_t n = 0;
  for (const auto& [sender, queue] : pending_) n += queue.size();
  return n;
}

void RecoveryState::saveState(Serializer& out) const {
  out.u64(pending_.size());
  for (const auto& [sender, queue] : pending_) {
    out.u32(sender.value);
    out.u64(queue.size());
    for (const LostFrame& frame : queue) saveFrame(out, frame);
  }
}

void RecoveryState::loadState(Deserializer& in) {
  pending_.clear();
  const std::size_t senders = in.length(4);
  for (std::size_t i = 0; i < senders; ++i) {
    const NodeId sender{in.u32()};
    const std::size_t count = in.length(4 * 4 + 1 + 8);
    std::vector<LostFrame>& queue = pending_[sender];
    queue.reserve(count);
    for (std::size_t j = 0; j < count; ++j) queue.push_back(loadFrame(in));
  }
}

std::uint64_t SummaryVector::metadataKey(FileId file) {
  return mix(kMetadataKeySalt ^ file.value);
}

std::uint64_t SummaryVector::pieceKey(FileId file, std::uint32_t piece) {
  return mix(kPieceKeySalt ^ (std::uint64_t{file.value} << 32 | piece));
}

}  // namespace hdtn::core
