// The authoritative catalog of published files (the Internet side).
//
// Files are produced by well-known publishers (paper Section III-B), split
// into fixed-size pieces, and advertised by metadata records carrying SHA-1
// checksums of every piece. The catalog owns file identity (FileId <-> URI),
// deterministic piece payload generation (the "content"), and metadata
// construction including publisher authentication.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/metadata.hpp"
#include "src/util/random.hpp"
#include "src/util/sha1.hpp"
#include "src/util/types.hpp"

namespace hdtn::core {

/// BitTorrent-style default piece size (paper Section III-B). Simulations
/// usually configure a smaller piece size; the paper itself notes the size
/// is tunable to trade metadata size against piece count.
inline constexpr std::uint32_t kDefaultPieceSizeBytes = 256 * 1024;

struct FileInfo {
  FileId id;
  Uri uri;
  std::string name;
  std::string publisher;
  std::string description;
  std::uint64_t sizeBytes = 0;
  std::uint32_t pieceSizeBytes = kDefaultPieceSizeBytes;
  Popularity popularity = 0.0;
  SimTime publishedAt = 0;
  Duration ttl = 0;

  [[nodiscard]] std::uint32_t pieceCount() const;
  [[nodiscard]] std::uint32_t pieceLength(std::uint32_t pieceIndex) const;
  [[nodiscard]] SimTime expiresAt() const { return publishedAt + ttl; }
  [[nodiscard]] bool alive(SimTime now) const {
    return now >= publishedAt && now < expiresAt();
  }
};

/// Deterministic synthetic piece payload: the byte stream of a file is a
/// keyed PRNG expansion of its URI, so any two parties generate identical
/// bytes (and hence identical checksums) without storing content.
[[nodiscard]] std::vector<std::uint8_t> makePieceBytes(const FileInfo& info,
                                                       std::uint32_t piece);

class FileCatalog {
 public:
  struct PublishRequest {
    std::string name;
    std::string publisher;
    std::string description;
    std::uint64_t sizeBytes = 0;
    std::uint32_t pieceSizeBytes = kDefaultPieceSizeBytes;
    Popularity popularity = 0.0;
    SimTime publishedAt = 0;
    Duration ttl = 0;
  };

  explicit FileCatalog(PublisherRegistry* registry = nullptr)
      : registry_(registry) {}

  /// Publishes a file; assigns its FileId and URI, computes piece checksums
  /// over the deterministic payload, and signs the metadata when the
  /// publisher is registered. sizeBytes and pieceSizeBytes must be > 0.
  FileId publish(const PublishRequest& request);

  [[nodiscard]] std::size_t size() const { return files_.size(); }
  [[nodiscard]] const FileInfo* find(FileId id) const;
  [[nodiscard]] const FileInfo* findByUri(const Uri& uri) const;

  /// The signed metadata record for a published file.
  [[nodiscard]] const Metadata& metadataFor(FileId id) const;

  /// Checksum of one piece, from the stored metadata.
  [[nodiscard]] const Sha1Digest& pieceDigest(FileId id,
                                              std::uint32_t piece) const;

  /// Verifies a received piece payload against the catalog checksum.
  [[nodiscard]] bool verifyPiece(FileId id, std::uint32_t piece,
                                 std::span<const std::uint8_t> data) const;

  /// Updates a file's popularity (and its metadata snapshot). Used when the
  /// metadata server replaces the publisher-assigned estimate with the
  /// observed request rate (paper Section IV: popularity "can be maintained
  /// by a central metadata server").
  void setPopularity(FileId id, Popularity popularity);

  /// Ids of all files alive at `now`.
  [[nodiscard]] std::vector<FileId> aliveFiles(SimTime now) const;

  /// All file ids in publication order.
  [[nodiscard]] std::vector<FileId> allFiles() const;

 private:
  PublisherRegistry* registry_;
  std::vector<FileInfo> files_;
  std::vector<Metadata> metadata_;
  std::unordered_map<Uri, FileId> byUri_;
};

}  // namespace hdtn::core
