#include "src/core/query.hpp"

#include <algorithm>

#include "src/util/string_util.hpp"

namespace hdtn::core {
namespace {

// Tokenizes just the searchable text fields of a record into a sorted,
// deduplicated local vector — the shape rebuildKeywords() produces — without
// copying the whole Metadata (piece checksums, auth tag) the way a
// `Metadata scratch = md` fallback would.
std::vector<std::string> tokenizeTextFields(const Metadata& md) {
  std::vector<std::string> keywords;
  for (const std::string* source : {&md.name, &md.publisher, &md.description}) {
    for (auto& token : keywordTokens(*source)) {
      keywords.push_back(std::move(token));
    }
  }
  std::sort(keywords.begin(), keywords.end());
  keywords.erase(std::unique(keywords.begin(), keywords.end()),
                 keywords.end());
  return keywords;
}

// Uses the precomputed sorted keyword list when present; otherwise tokenizes
// the text fields on the fly (hand-constructed Metadata in tests).
bool containsAllTokens(const std::vector<std::string>& queryTokens,
                       const Metadata& md) {
  if (queryTokens.empty()) return false;
  const auto matchAgainst = [&queryTokens](
                                const std::vector<std::string>& keywords) {
    return std::all_of(queryTokens.begin(), queryTokens.end(),
                       [&keywords](const std::string& kw) {
                         return std::binary_search(keywords.begin(),
                                                   keywords.end(), kw);
                       });
  };
  if (!md.keywords.empty()) return matchAgainst(md.keywords);
  return matchAgainst(tokenizeTextFields(md));
}

std::size_t keywordCountOf(const Metadata& md) {
  if (!md.keywords.empty()) return md.keywords.size();
  return tokenizeTextFields(md).size();
}

}  // namespace

bool queryMatches(const std::string& queryText, const Metadata& md) {
  return containsAllTokens(keywordTokens(queryText), md);
}

bool queryTokensMatch(const std::vector<std::string>& queryTokens,
                      const Metadata& md) {
  return containsAllTokens(queryTokens, md);
}

bool queryTokensMatchPrehashed(const std::vector<std::string>& queryTokens,
                               const std::vector<std::uint64_t>& queryTokenHashes,
                               const Metadata& md) {
  // The hash index only speaks for the record when it covers every keyword
  // (hand-built Metadata may carry keywords without rebuilt hashes).
  if (md.keywords.empty() || md.keywordHashes.size() != md.keywords.size() ||
      queryTokenHashes.size() != queryTokens.size()) {
    return containsAllTokens(queryTokens, md);
  }
  if (queryTokens.empty()) return false;
  for (std::size_t k = 0; k < queryTokens.size(); ++k) {
    if (!std::binary_search(md.keywordHashes.begin(), md.keywordHashes.end(),
                            queryTokenHashes[k])) {
      return false;
    }
    // Hash hit: confirm on the strings so a collision can never flip a
    // non-match into a match.
    if (!std::binary_search(md.keywords.begin(), md.keywords.end(),
                            queryTokens[k])) {
      return false;
    }
  }
  return true;
}

std::vector<RankedMatch> rankMatches(
    const std::string& queryText,
    std::span<const Metadata* const> candidates) {
  std::vector<RankedMatch> out;
  const auto queryTokens = keywordTokens(queryText);
  for (const Metadata* md : candidates) {
    if (md == nullptr || !containsAllTokens(queryTokens, *md)) continue;
    const double keywordCount = static_cast<double>(keywordCountOf(*md));
    // Popularity dominates; the specificity bonus only breaks near-ties in
    // favour of records the query describes more completely.
    const double score = md->popularity + 0.001 / (1.0 + keywordCount);
    out.push_back(RankedMatch{md, score});
  }
  std::sort(out.begin(), out.end(), [](const RankedMatch& a,
                                       const RankedMatch& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.metadata->file < b.metadata->file;
  });
  return out;
}

const Metadata* bestMatch(const std::string& queryText,
                          const MetadataStore& store) {
  const auto ranked = rankMatches(queryText, store.all());
  return ranked.empty() ? nullptr : ranked.front().metadata;
}

}  // namespace hdtn::core
