#include "src/core/query.hpp"

#include <algorithm>
#include <unordered_set>

#include "src/util/string_util.hpp"

namespace hdtn::core {
namespace {

// Uses the precomputed sorted keyword list when present; otherwise builds
// one on the fly (hand-constructed Metadata in tests).
bool containsAllTokens(const std::vector<std::string>& queryTokens,
                       const Metadata& md) {
  if (queryTokens.empty()) return false;
  if (!md.keywords.empty()) {
    return std::all_of(queryTokens.begin(), queryTokens.end(),
                       [&md](const std::string& kw) {
                         return std::binary_search(md.keywords.begin(),
                                                   md.keywords.end(), kw);
                       });
  }
  Metadata scratch = md;
  scratch.rebuildKeywords();
  return std::all_of(queryTokens.begin(), queryTokens.end(),
                     [&scratch](const std::string& kw) {
                       return std::binary_search(scratch.keywords.begin(),
                                                 scratch.keywords.end(), kw);
                     });
}

std::size_t keywordCountOf(const Metadata& md) {
  if (!md.keywords.empty()) return md.keywords.size();
  Metadata scratch = md;
  scratch.rebuildKeywords();
  return scratch.keywords.size();
}

}  // namespace

bool queryMatches(const std::string& queryText, const Metadata& md) {
  return containsAllTokens(keywordTokens(queryText), md);
}

bool queryTokensMatch(const std::vector<std::string>& queryTokens,
                      const Metadata& md) {
  return containsAllTokens(queryTokens, md);
}

std::vector<RankedMatch> rankMatches(
    const std::string& queryText,
    const std::vector<const Metadata*>& candidates) {
  std::vector<RankedMatch> out;
  const auto queryTokens = keywordTokens(queryText);
  for (const Metadata* md : candidates) {
    if (md == nullptr || !containsAllTokens(queryTokens, *md)) continue;
    const double keywordCount = static_cast<double>(keywordCountOf(*md));
    // Popularity dominates; the specificity bonus only breaks near-ties in
    // favour of records the query describes more completely.
    const double score = md->popularity + 0.001 / (1.0 + keywordCount);
    out.push_back(RankedMatch{md, score});
  }
  std::sort(out.begin(), out.end(), [](const RankedMatch& a,
                                       const RankedMatch& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.metadata->file < b.metadata->file;
  });
  return out;
}

const Metadata* bestMatch(const std::string& queryText,
                          const MetadataStore& store) {
  const auto ranked = rankMatches(queryText, store.all());
  return ranked.empty() ? nullptr : ranked.front().metadata;
}

}  // namespace hdtn::core
