#include "src/core/discovery.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "src/core/query.hpp"
#include "src/util/random.hpp"
#include "src/util/string_util.hpp"

namespace hdtn::core {
namespace {

// Working view of one candidate record during planning.
struct Candidate {
  const Metadata* metadata = nullptr;
  std::vector<NodeId> holders;     // contributing members that can send it
  std::vector<NodeId> lackers;     // members that do not hold it
  std::vector<NodeId> requesters;  // lackers with a matching query
};

// Collects every record held by at least one contributing member and
// missing at at least one member.
std::vector<Candidate> collectCandidates(std::span<const DiscoveryPeer> peers) {
  std::map<FileId, Candidate> byFile;
  for (const DiscoveryPeer& peer : peers) {
    if (peer.store == nullptr) continue;
    for (const Metadata* md : peer.store->all()) {
      auto& cand = byFile[md->file];
      cand.metadata = md;
      if (peer.contributes) cand.holders.push_back(peer.id);
    }
  }
  // Tokenize every peer's queries once up front.
  std::vector<std::vector<std::vector<std::string>>> tokenized(peers.size());
  for (std::size_t i = 0; i < peers.size(); ++i) {
    for (const std::string& q : peers[i].queries) {
      tokenized[i].push_back(keywordTokens(q));
    }
  }
  std::vector<Candidate> out;
  for (auto& [file, cand] : byFile) {
    if (cand.holders.empty()) continue;
    for (std::size_t i = 0; i < peers.size(); ++i) {
      const DiscoveryPeer& peer = peers[i];
      if (peer.store != nullptr && peer.store->has(file)) continue;
      // A record the peer refused counts as held: re-sending it would only
      // burn broadcast budget on a guaranteed rejection.
      if (peer.rejected != nullptr && peer.rejected->contains(file)) {
        continue;
      }
      // Likewise when the peer distrusts every node able to send it.
      if (peer.distrustedSenders != nullptr) {
        const bool someTrustedHolder = std::any_of(
            cand.holders.begin(), cand.holders.end(), [&peer](NodeId h) {
              return !peer.distrustedSenders->contains(h);
            });
        if (!someTrustedHolder) continue;
      }
      cand.lackers.push_back(peer.id);
      const bool wants = std::any_of(
          tokenized[i].begin(), tokenized[i].end(),
          [&cand](const std::vector<std::string>& tokens) {
            return queryTokensMatch(tokens, *cand.metadata);
          });
      if (wants) cand.requesters.push_back(peer.id);
    }
    if (cand.lackers.empty()) continue;
    out.push_back(std::move(cand));
  }
  return out;
}

std::vector<MetadataBroadcast> planCooperative(
    std::span<const DiscoveryPeer> peers, int budget, bool useRequestPhase) {
  std::vector<Candidate> candidates = collectCandidates(peers);
  // Two-phase order: requested records by (requester count desc, popularity
  // desc), then unrequested by popularity desc. File id breaks exact ties
  // deterministically. The popularity-only ablation skips the request phase.
  std::sort(candidates.begin(), candidates.end(),
            [useRequestPhase](const Candidate& a, const Candidate& b) {
              if (useRequestPhase &&
                  a.requesters.size() != b.requesters.size()) {
                return a.requesters.size() > b.requesters.size();
              }
              if (a.metadata->popularity != b.metadata->popularity) {
                return a.metadata->popularity > b.metadata->popularity;
              }
              return a.metadata->file < b.metadata->file;
            });
  std::vector<MetadataBroadcast> plan;
  for (const Candidate& cand : candidates) {
    if (static_cast<int>(plan.size()) >= budget) break;
    MetadataBroadcast b;
    // The coordinator assigns the lowest-id holder as sender.
    b.sender = *std::min_element(cand.holders.begin(), cand.holders.end());
    b.metadata = cand.metadata;
    b.requesters = cand.requesters;
    b.phase = cand.requesters.empty() ? 2 : 1;
    plan.push_back(std::move(b));
  }
  return plan;
}

std::vector<MetadataBroadcast> planTitForTat(
    std::span<const DiscoveryPeer> peers, int budget) {
  std::vector<Candidate> candidates = collectCandidates(peers);
  std::unordered_map<NodeId, const DiscoveryPeer*> peerById;
  std::vector<NodeId> contributorIds;
  for (const DiscoveryPeer& peer : peers) {
    peerById[peer.id] = &peer;
    if (peer.contributes) contributorIds.push_back(peer.id);
  }
  if (contributorIds.empty()) return {};
  // Agreed-upon cyclic sender order (paper V-B uses the same construction
  // for downloads; discovery reuses it so no selfish coordinator exists).
  const std::vector<NodeId> order(
      cyclicOrder(std::span<const NodeId>(contributorIds)));

  std::vector<MetadataBroadcast> plan;
  std::unordered_set<FileId> sent;
  std::size_t turn = 0;
  int idleTurns = 0;
  while (static_cast<int>(plan.size()) < budget &&
         idleTurns < static_cast<int>(order.size())) {
    const NodeId sender = order[turn % order.size()];
    ++turn;
    const DiscoveryPeer& senderPeer = *peerById.at(sender);
    // The sender picks, among its own records not yet broadcast, the one
    // with the highest credit-weighted demand.
    const Candidate* best = nullptr;
    double bestWeight = -1.0;
    for (const Candidate& cand : candidates) {
      if (sent.contains(cand.metadata->file)) continue;
      if (std::find(cand.holders.begin(), cand.holders.end(), sender) ==
          cand.holders.end()) {
        continue;
      }
      double weight = 0.0;
      for (NodeId requester : cand.requesters) {
        weight += senderPeer.credits != nullptr
                      ? senderPeer.credits->credit(requester)
                      : 0.0;
        // A request is worth at least a popularity unit even from a
        // zero-credit peer, keeping requested items ahead of pure pushes.
        weight += 1.0;
      }
      weight += cand.metadata->popularity;  // push-phase tiebreak
      if (best == nullptr || weight > bestWeight ||
          (weight == bestWeight && cand.metadata->file < best->metadata->file)) {
        best = &cand;
        bestWeight = weight;
      }
    }
    if (best == nullptr) {
      ++idleTurns;
      continue;
    }
    idleTurns = 0;
    sent.insert(best->metadata->file);
    MetadataBroadcast b;
    b.sender = sender;
    b.metadata = best->metadata;
    b.requesters = best->requesters;
    b.phase = best->requesters.empty() ? 2 : 1;
    plan.push_back(std::move(b));
  }
  return plan;
}

}  // namespace

std::vector<MetadataBroadcast> planDiscovery(
    std::span<const DiscoveryPeer> peers, int budget, Scheduling scheduling) {
  if (budget <= 0 || peers.size() < 2) return {};
  switch (scheduling) {
    case Scheduling::kCooperative:
      return planCooperative(peers, budget, /*useRequestPhase=*/true);
    case Scheduling::kTitForTat:
      return planTitForTat(peers, budget);
    case Scheduling::kPopularityOnly:
      return planCooperative(peers, budget, /*useRequestPhase=*/false);
  }
  return {};
}

}  // namespace hdtn::core
