#include "src/core/discovery.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "src/core/query.hpp"
#include "src/obs/events.hpp"
#include "src/util/random.hpp"
#include "src/util/string_util.hpp"

namespace hdtn::core {
namespace {

// Working view of one candidate record during planning. Holder sets live as
// bitmasks over the member list (see CandidateSet) rather than NodeId
// vectors: a contact has few members, so one or two words per candidate
// replace three heap vectors and all the per-member store lookups.
struct Candidate {
  const Metadata* metadata = nullptr;
  std::vector<NodeId> requesters;  // lackers with a matching query
};

// All candidates of one contact plus the contributing-holder bitmasks
// (row c occupies words [c*words, (c+1)*words), bit i = peers[i]).
struct CandidateSet {
  std::vector<Candidate> items;
  std::size_t words = 0;
  std::vector<std::uint64_t> contrib;

  [[nodiscard]] const std::uint64_t* row(std::size_t c) const {
    return contrib.data() + c * words;
  }
};

template <typename Fn>
void forEachBit(const std::uint64_t* mask, std::size_t words, Fn&& fn) {
  for (std::size_t w = 0; w < words; ++w) {
    for (std::uint64_t bits = mask[w]; bits != 0; bits &= bits - 1) {
      fn(w * 64 + static_cast<std::size_t>(std::countr_zero(bits)));
    }
  }
}

bool testBit(const std::uint64_t* mask, std::size_t i) {
  return (mask[i / 64] >> (i % 64)) & 1;
}

// The coordinator assigns the lowest-id contributing holder as sender.
NodeId minHolderId(const CandidateSet& set, std::size_t c,
                   std::span<const DiscoveryPeer> peers) {
  NodeId best;
  bool first = true;
  forEachBit(set.row(c), set.words, [&](std::size_t i) {
    if (first || peers[i].id < best) {
      best = peers[i].id;
      first = false;
    }
  });
  return best;
}

// Collects every record held by at least one contributing member and
// missing at at least one member. The stores' all() views are cached sorted
// spans, so candidate grouping is one flat sort of (file, member) entries;
// the lackers pass then works off per-candidate holder bitmasks and never
// touches the stores again.
CandidateSet collectCandidates(std::span<const DiscoveryPeer> peers) {
  CandidateSet set;
  set.words = (peers.size() + 63) / 64;
  struct Entry {
    FileId file;
    std::uint32_t peer;
    const Metadata* md;
  };
  std::vector<Entry> entries;
  std::size_t total = 0;
  for (const DiscoveryPeer& peer : peers) {
    if (peer.store != nullptr) total += peer.store->all().size();
  }
  entries.reserve(total);
  for (std::size_t i = 0; i < peers.size(); ++i) {
    if (peers[i].store == nullptr) continue;
    for (const Metadata* md : peers[i].store->all()) {
      entries.push_back({md->file, static_cast<std::uint32_t>(i), md});
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              if (a.file != b.file) return a.file < b.file;
              return a.peer < b.peer;
            });
  // Tokenized queries: prefer the caller's precomputed lists (the engine
  // caches them per node), tokenizing locally only for peers built by hand.
  std::vector<std::vector<std::vector<std::string>>> localTokens;
  std::vector<const std::vector<std::vector<std::string>>*> tokens(
      peers.size());
  localTokens.reserve(peers.size());
  for (std::size_t i = 0; i < peers.size(); ++i) {
    if (peers[i].tokenizedQueries != nullptr) {
      tokens[i] = peers[i].tokenizedQueries;
      continue;
    }
    auto& mine = localTokens.emplace_back();
    for (const std::string& q : peers[i].queries) {
      mine.push_back(keywordTokens(q));
    }
    tokens[i] = &mine;
  }
  // Hash every query token once per contact; the per-candidate matching
  // below then probes the records' keyword-hash index.
  std::vector<std::vector<std::vector<std::uint64_t>>> tokenHashes(
      peers.size());
  for (std::size_t i = 0; i < peers.size(); ++i) {
    tokenHashes[i].reserve(tokens[i]->size());
    for (const std::vector<std::string>& queryTokens : *tokens[i]) {
      auto& hashes = tokenHashes[i].emplace_back();
      hashes.reserve(queryTokens.size());
      for (const std::string& t : queryTokens) {
        hashes.push_back(keywordHash(t));
      }
    }
  }
  std::vector<std::uint64_t> heldBy(set.words);
  std::vector<std::uint64_t> contribRow(set.words);
  for (std::size_t a = 0; a < entries.size();) {
    std::size_t b = a;
    while (b < entries.size() && entries[b].file == entries[a].file) ++b;
    std::fill(heldBy.begin(), heldBy.end(), 0);
    std::fill(contribRow.begin(), contribRow.end(), 0);
    bool anyContributor = false;
    for (std::size_t e = a; e < b; ++e) {
      const std::size_t i = entries[e].peer;
      heldBy[i / 64] |= std::uint64_t{1} << (i % 64);
      if (peers[i].contributes) {
        contribRow[i / 64] |= std::uint64_t{1} << (i % 64);
        anyContributor = true;
      }
    }
    Candidate cand;
    // When multiple stores carry (divergent copies of) the record, the one
    // from the highest member index wins, as the old per-member overwrite
    // produced.
    cand.metadata = entries[b - 1].md;
    a = b;
    if (!anyContributor) continue;
    bool anyLacker = false;
    for (std::size_t i = 0; i < peers.size(); ++i) {
      const DiscoveryPeer& peer = peers[i];
      if (testBit(heldBy.data(), i)) continue;
      // A record the peer refused counts as held: re-sending it would only
      // burn broadcast budget on a guaranteed rejection.
      if (peer.rejected != nullptr &&
          peer.rejected->contains(cand.metadata->file)) {
        continue;
      }
      // Likewise when the peer distrusts every node able to send it.
      if (peer.distrustedSenders != nullptr) {
        bool someTrustedHolder = false;
        forEachBit(contribRow.data(), set.words, [&](std::size_t h) {
          someTrustedHolder = someTrustedHolder ||
                              !peer.distrustedSenders->contains(peers[h].id);
        });
        if (!someTrustedHolder) continue;
      }
      anyLacker = true;
      bool wants = false;
      for (std::size_t q = 0; q < tokens[i]->size() && !wants; ++q) {
        wants = queryTokensMatchPrehashed((*tokens[i])[q], tokenHashes[i][q],
                                          *cand.metadata);
      }
      if (wants) cand.requesters.push_back(peer.id);
    }
    if (!anyLacker) continue;
    set.contrib.insert(set.contrib.end(), contribRow.begin(),
                       contribRow.end());
    set.items.push_back(std::move(cand));
  }
  return set;
}

std::vector<MetadataBroadcast> planCooperative(
    std::span<const DiscoveryPeer> peers, int budget, bool useRequestPhase) {
  const CandidateSet set = collectCandidates(peers);
  // Two-phase order: requested records by (requester count desc, popularity
  // desc), then unrequested by popularity desc. File id breaks exact ties
  // deterministically. The popularity-only ablation skips the request phase.
  std::vector<std::uint32_t> order(set.items.size());
  for (std::uint32_t c = 0; c < order.size(); ++c) order[c] = c;
  std::sort(order.begin(), order.end(),
            [&set, useRequestPhase](std::uint32_t ai, std::uint32_t bi) {
              const Candidate& a = set.items[ai];
              const Candidate& b = set.items[bi];
              if (useRequestPhase &&
                  a.requesters.size() != b.requesters.size()) {
                return a.requesters.size() > b.requesters.size();
              }
              if (a.metadata->popularity != b.metadata->popularity) {
                return a.metadata->popularity > b.metadata->popularity;
              }
              return a.metadata->file < b.metadata->file;
            });
  std::vector<MetadataBroadcast> plan;
  for (std::uint32_t c : order) {
    if (static_cast<int>(plan.size()) >= budget) break;
    const Candidate& cand = set.items[c];
    MetadataBroadcast b;
    b.sender = minHolderId(set, c, peers);
    b.metadata = cand.metadata;
    b.requesters = cand.requesters;
    b.phase = cand.requesters.empty() ? 2 : 1;
    plan.push_back(std::move(b));
  }
  return plan;
}

// The credit-weighted demand `sender` sees for a candidate. The summation
// order matters: the optimized planner precomputes these values and must
// produce bit-identical doubles to the reference's per-turn recomputation.
double demandWeight(const DiscoveryPeer& sender, const Candidate& cand) {
  double weight = 0.0;
  for (NodeId requester : cand.requesters) {
    weight += sender.credits != nullptr ? sender.credits->credit(requester)
                                        : 0.0;
    // A request is worth at least a popularity unit even from a
    // zero-credit peer, keeping requested items ahead of pure pushes.
    weight += 1.0;
  }
  weight += cand.metadata->popularity;  // push-phase tiebreak
  return weight;
}

// Shared tit-for-tat setup: candidate collection, contributor list, and the
// agreed cyclic sender order (paper V-B uses the same construction for
// downloads; discovery reuses it so no selfish coordinator exists). Senders
// are handled as member indices into `peers`.
struct TftSetup {
  CandidateSet set;
  std::vector<std::size_t> order;  // cyclic sender turns, as peer indices
};

TftSetup tftSetup(std::span<const DiscoveryPeer> peers) {
  TftSetup setup;
  setup.set = collectCandidates(peers);
  std::vector<NodeId> contributorIds;
  std::unordered_map<NodeId, std::size_t> indexById;
  for (std::size_t i = 0; i < peers.size(); ++i) {
    indexById.emplace(peers[i].id, i);
    if (peers[i].contributes) contributorIds.push_back(peers[i].id);
  }
  if (!contributorIds.empty()) {
    for (NodeId id : cyclicOrder(std::span<const NodeId>(contributorIds))) {
      setup.order.push_back(indexById.at(id));
    }
  }
  return setup;
}

MetadataBroadcast broadcastFor(NodeId sender, const Candidate& cand) {
  MetadataBroadcast b;
  b.sender = sender;
  b.metadata = cand.metadata;
  b.requesters = cand.requesters;
  b.phase = cand.requesters.empty() ? 2 : 1;
  return b;
}

// Optimized tit-for-tat: each sender's preference over its own records is
// static during a contact (credits, requesters, and popularity are all
// snapshots), so senders keep max-heaps over one CSR-style flat array
// segmented by sender. Each turn pops the sender's heap past
// already-broadcast records instead of rescanning all candidates x members.
// O(sum_s |cands_s|) heapify setup, O((budget + skips) log) loop — versus
// O(budget x candidates x members) for the reference.
std::vector<MetadataBroadcast> planTitForTat(
    std::span<const DiscoveryPeer> peers, int budget) {
  const TftSetup setup = tftSetup(peers);
  if (setup.order.empty()) return {};
  const CandidateSet& set = setup.set;

  // CSR layout: sender i owns ranked[offset[i], offset[i+1]).
  std::vector<std::size_t> offset(peers.size() + 1, 0);
  for (std::size_t c = 0; c < set.items.size(); ++c) {
    forEachBit(set.row(c), set.words, [&](std::size_t i) { ++offset[i + 1]; });
  }
  for (std::size_t i = 0; i < peers.size(); ++i) offset[i + 1] += offset[i];
  struct RankedItem {
    double weight;
    FileId file;  // denormalized so tie-breaking needs no pointer chase
    std::uint32_t candidate;
  };
  std::vector<RankedItem> ranked(offset.back());
  std::vector<std::size_t> cursor(offset.begin(), offset.end() - 1);
  // An unrequested candidate weighs exactly its popularity for every sender
  // (demandWeight's requester sum is empty), so those rows — the vast
  // majority — are keyed once here instead of per holder.
  std::vector<RankedItem> base(set.items.size());
  std::vector<bool> requested(set.items.size());
  for (std::uint32_t c = 0; c < set.items.size(); ++c) {
    const Metadata& md = *set.items[c].metadata;
    base[c] = {md.popularity, md.file, c};
    requested[c] = !set.items[c].requesters.empty();
  }
  for (std::uint32_t c = 0; c < set.items.size(); ++c) {
    forEachBit(set.row(c), set.words, [&](std::size_t i) {
      RankedItem item = base[c];
      if (requested[c]) item.weight = demandWeight(peers[i], set.items[c]);
      ranked[cursor[i]++] = item;
    });
  }
  // Per-sender preference: (demand weight desc, file id asc) — exactly the
  // reference's pick rule, realized as a max-heap per segment. A sender only
  // ever surfaces ~budget/|senders| items, so heapify-then-pop beats a full
  // sort of every segment.
  const auto heapLess = [](const RankedItem& a, const RankedItem& b) {
    if (a.weight != b.weight) return a.weight < b.weight;
    return a.file > b.file;
  };
  for (std::size_t i = 0; i < peers.size(); ++i) {
    std::make_heap(ranked.begin() + static_cast<std::ptrdiff_t>(offset[i]),
                   ranked.begin() + static_cast<std::ptrdiff_t>(offset[i + 1]),
                   heapLess);
    cursor[i] = offset[i + 1];  // the live end of sender i's heap
  }

  std::vector<MetadataBroadcast> plan;
  std::vector<bool> sent(set.items.size(), false);
  std::size_t turn = 0;
  int idleTurns = 0;
  while (static_cast<int>(plan.size()) < budget &&
         idleTurns < static_cast<int>(setup.order.size())) {
    const std::size_t si = setup.order[turn % setup.order.size()];
    ++turn;
    const auto begin = ranked.begin() + static_cast<std::ptrdiff_t>(offset[si]);
    std::size_t& end = cursor[si];
    // Drop records another sender already broadcast.
    while (end > offset[si] && sent[begin->candidate]) {
      std::pop_heap(begin, ranked.begin() + static_cast<std::ptrdiff_t>(end--),
                    heapLess);
    }
    if (end == offset[si]) {
      ++idleTurns;
      continue;
    }
    idleTurns = 0;
    const std::uint32_t chosen = begin->candidate;
    std::pop_heap(begin, ranked.begin() + static_cast<std::ptrdiff_t>(end--),
                  heapLess);
    sent[chosen] = true;
    plan.push_back(broadcastFor(peers[si].id, set.items[chosen]));
  }
  return plan;
}

// Reference tit-for-tat: full rescan of candidates x members every turn.
// Kept as the direct transcription of the paper's rule for the equivalence
// tests.
std::vector<MetadataBroadcast> planTitForTatReference(
    std::span<const DiscoveryPeer> peers, int budget) {
  const TftSetup setup = tftSetup(peers);
  if (setup.order.empty()) return {};
  const CandidateSet& set = setup.set;

  std::vector<MetadataBroadcast> plan;
  std::unordered_set<FileId> sent;
  std::size_t turn = 0;
  int idleTurns = 0;
  while (static_cast<int>(plan.size()) < budget &&
         idleTurns < static_cast<int>(setup.order.size())) {
    const std::size_t si = setup.order[turn % setup.order.size()];
    ++turn;
    const DiscoveryPeer& senderPeer = peers[si];
    // The sender picks, among its own records not yet broadcast, the one
    // with the highest credit-weighted demand.
    const Candidate* best = nullptr;
    double bestWeight = -1.0;
    for (std::size_t c = 0; c < set.items.size(); ++c) {
      const Candidate& cand = set.items[c];
      if (sent.contains(cand.metadata->file)) continue;
      if (!testBit(set.row(c), si)) continue;
      const double weight = demandWeight(senderPeer, cand);
      if (best == nullptr || weight > bestWeight ||
          (weight == bestWeight &&
           cand.metadata->file < best->metadata->file)) {
        best = &cand;
        bestWeight = weight;
      }
    }
    if (best == nullptr) {
      ++idleTurns;
      continue;
    }
    idleTurns = 0;
    sent.insert(best->metadata->file);
    plan.push_back(broadcastFor(senderPeer.id, *best));
  }
  return plan;
}

}  // namespace

std::vector<MetadataBroadcast> planDiscovery(
    std::span<const DiscoveryPeer> peers, int budget, Scheduling scheduling,
    obs::EngineObserver* observer, SimTime now) {
  if (budget <= 0 || peers.size() < 2) return {};
  std::vector<MetadataBroadcast> plan;
  switch (scheduling) {
    case Scheduling::kCooperative:
      plan = planCooperative(peers, budget, /*useRequestPhase=*/true);
      break;
    case Scheduling::kTitForTat:
      plan = planTitForTat(peers, budget);
      break;
    case Scheduling::kPopularityOnly:
      plan = planCooperative(peers, budget, /*useRequestPhase=*/false);
      break;
  }
  if (observer != nullptr) {
    obs::SimEvent event;
    event.type = obs::SimEventType::kDiscoveryPlanned;
    event.time = now;
    event.extra = static_cast<std::uint32_t>(plan.size());
    event.value = static_cast<double>(budget);
    observer->onEvent(event);
  }
  return plan;
}

std::vector<MetadataBroadcast> planDiscoveryReference(
    std::span<const DiscoveryPeer> peers, int budget, Scheduling scheduling) {
  if (budget <= 0 || peers.size() < 2) return {};
  switch (scheduling) {
    case Scheduling::kCooperative:
      return planCooperative(peers, budget, /*useRequestPhase=*/true);
    case Scheduling::kTitForTat:
      return planTitForTatReference(peers, budget);
    case Scheduling::kPopularityOnly:
      return planCooperative(peers, budget, /*useRequestPhase=*/false);
  }
  return {};
}

}  // namespace hdtn::core
