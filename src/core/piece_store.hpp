// Per-node storage of downloaded file pieces.
//
// Pieces of a file "may be downloaded at different times and places" (paper
// Section III-B); the store tracks, per file, a bitmap of held pieces and
// reports completion. Storage is unbounded, as in the paper's simulation
// model; an optional capacity with popularity-aware eviction is provided for
// constrained deployments.
//
// Layout: bitmaps live in one per-store word arena instead of a heap
// allocation per file. Each registered file owns a span of 64-bit words;
// removeFile returns the span to a size-keyed free list and registerFile
// reuses it, so a store that churns files (TTL expiry every contact)
// settles into a fixed arena with no steady-state allocation. At city scale
// this is the difference between one contiguous block per node and millions
// of scattered vector<bool> headers.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/util/serialize.hpp"
#include "src/util/types.hpp"

namespace hdtn::core {

class PieceStore {
 public:
  /// Unbounded store.
  PieceStore() = default;

  /// Bounded store: at most `capacityPieces` pieces are retained; when full,
  /// addPiece evicts a piece of the lowest-priority incomplete file.
  explicit PieceStore(std::size_t capacityPieces)
      : capacity_(capacityPieces) {}

  /// Registers interest in a file (fixes its piece count). Idempotent;
  /// returns false if the file was registered with a different count.
  bool registerFile(FileId file, std::uint32_t pieceCount);

  /// Adds one piece. The file must be registered and `piece` in range.
  /// Returns true if the piece was newly added.
  bool addPiece(FileId file, std::uint32_t piece);

  /// Adds every piece of a registered file (e.g. a direct Internet
  /// download). Returns number of pieces newly added.
  std::uint32_t addWholeFile(FileId file);

  /// Drops a file and all its pieces.
  void removeFile(FileId file);

  [[nodiscard]] bool isRegistered(FileId file) const;
  [[nodiscard]] bool hasPiece(FileId file, std::uint32_t piece) const;
  [[nodiscard]] bool isComplete(FileId file) const;
  [[nodiscard]] std::uint32_t piecesHeld(FileId file) const;
  [[nodiscard]] std::uint32_t pieceCount(FileId file) const;

  /// Indices of pieces of `file` not yet held (empty if unregistered).
  [[nodiscard]] std::vector<std::uint32_t> missingPieces(FileId file) const;

  /// All registered files, ascending id.
  [[nodiscard]] std::vector<FileId> files() const;

  /// Registered files with every piece present, ascending id.
  [[nodiscard]] std::vector<FileId> completeFiles() const;

  [[nodiscard]] std::size_t totalPiecesHeld() const { return totalHeld_; }

  /// Words currently in the bitmap arena (allocated + free-listed); tests
  /// assert that churn reuses blocks instead of growing this.
  [[nodiscard]] std::size_t arenaWords() const { return arena_.size(); }

  /// Sets the priority used by bounded-store eviction (higher survives
  /// longer). Typically the file's popularity.
  void setPriority(FileId file, double priority);

  /// Checkpoints every registered file's bitmap, priority, and registration
  /// seq (file-id ascending) — seq included so a restored store picks the
  /// same eviction victims. The capacity bound is construction state, not
  /// serialized.
  void saveState(Serializer& out) const;
  void loadState(Deserializer& in);

 private:
  struct Entry {
    std::uint32_t word = 0;  ///< first arena word of this file's bitmap
    std::uint32_t pieces = 0;
    std::uint32_t held = 0;
    double priority = 0.0;
    /// Registration order; breaks eviction ties at equal priority
    /// (insertion-ascending) so victim choice never depends on hash-map
    /// iteration order.
    std::uint64_t seq = 0;
  };

  static std::uint32_t wordsFor(std::uint32_t pieces) {
    return (pieces + 63) / 64;
  }
  [[nodiscard]] bool bit(const Entry& e, std::uint32_t piece) const {
    return (arena_[e.word + piece / 64] >> (piece % 64)) & 1u;
  }
  void setBit(const Entry& e, std::uint32_t piece) {
    arena_[e.word + piece / 64] |= std::uint64_t{1} << (piece % 64);
  }
  void clearBit(const Entry& e, std::uint32_t piece) {
    arena_[e.word + piece / 64] &= ~(std::uint64_t{1} << (piece % 64));
  }
  /// Allocates a zeroed span of `words`, reusing a freed block when one of
  /// the exact size exists.
  std::uint32_t allocWords(std::uint32_t words);

  void evictOnePiece();

  std::unordered_map<FileId, Entry> entries_;
  std::vector<std::uint64_t> arena_;
  /// word-length -> reusable arena offsets (LIFO; deterministic reuse).
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> freeBlocks_;
  std::size_t totalHeld_ = 0;
  std::uint64_t nextSeq_ = 1;
  std::optional<std::size_t> capacity_;
};

}  // namespace hdtn::core
