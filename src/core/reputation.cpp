#include "src/core/reputation.hpp"

#include <algorithm>

namespace hdtn::core {

std::vector<std::string> ReputationParams::validate() const {
  std::vector<std::string> errors;
  if (!(quarantineThreshold > 0.0)) {
    errors.push_back("quarantineThreshold must be positive, got " +
                     std::to_string(quarantineThreshold));
  }
  const auto weight = [&errors](const char* name, double v) {
    if (!(v >= 0.0)) {
      errors.push_back(std::string(name) + " must be non-negative, got " +
                       std::to_string(v));
    }
  };
  weight("failedVerificationWeight", failedVerificationWeight);
  weight("summaryMismatchWeight", summaryMismatchWeight);
  weight("ackAnomalyWeight", ackAnomalyWeight);
  weight("broadcastSuppressedWeight", broadcastSuppressedWeight);
  weight("decayPerDay", decayPerDay);
  return errors;
}

void ReputationTracker::decay(Entry& entry, SimTime now) const {
  if (now <= entry.lastUpdate) return;
  const double elapsedDays =
      static_cast<double>(now - entry.lastUpdate) / static_cast<double>(kDay);
  entry.suspicion =
      std::max(0.0, entry.suspicion - params_.decayPerDay * elapsedDays);
  entry.lastUpdate = now;
}

bool ReputationTracker::addEvidence(NodeId node, EvidenceKind kind,
                                    SimTime now) {
  Entry& entry = entries_[node.value];
  decay(entry, now);
  double weight = 0.0;
  switch (kind) {
    case EvidenceKind::kFailedVerification:
      weight = params_.failedVerificationWeight;
      break;
    case EvidenceKind::kSummaryMismatch:
      weight = params_.summaryMismatchWeight;
      break;
    case EvidenceKind::kAckAnomaly:
      weight = params_.ackAnomalyWeight;
      break;
    case EvidenceKind::kBroadcastSuppressed:
      weight = params_.broadcastSuppressedWeight;
      break;
  }
  entry.suspicion += weight;
  if (!entry.quarantined && entry.suspicion >= params_.quarantineThreshold) {
    entry.quarantined = true;
    return true;
  }
  return false;
}

bool ReputationTracker::isQuarantined(NodeId node, SimTime now,
                                      bool* released) {
  auto it = entries_.find(node.value);
  if (it == entries_.end()) return false;
  Entry& entry = it->second;
  if (!entry.quarantined) return false;
  decay(entry, now);
  // Hysteresis: release only once decay brings suspicion well under the
  // entry threshold, so a node on the boundary cannot flap per contact.
  if (entry.suspicion < params_.quarantineThreshold * 0.5) {
    entry.quarantined = false;
    if (released) *released = true;
    return false;
  }
  return true;
}

double ReputationTracker::suspicion(NodeId node, SimTime now) const {
  auto it = entries_.find(node.value);
  if (it == entries_.end()) return 0.0;
  Entry entry = it->second;
  decay(entry, now);
  return entry.suspicion;
}

std::size_t ReputationTracker::quarantinedCount() const {
  std::size_t count = 0;
  for (const auto& [node, entry] : entries_) {
    if (entry.quarantined) ++count;
  }
  return count;
}

void ReputationTracker::saveState(Serializer& out) const {
  out.u64(entries_.size());
  for (const auto& [node, entry] : entries_) {
    out.u32(node);
    out.f64(entry.suspicion);
    out.u64(static_cast<std::uint64_t>(entry.lastUpdate));
    out.u8(entry.quarantined ? 1 : 0);
  }
}

void ReputationTracker::loadState(Deserializer& in) {
  entries_.clear();
  const std::uint64_t count = in.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint32_t node = in.u32();
    Entry entry;
    entry.suspicion = in.f64();
    entry.lastUpdate = static_cast<SimTime>(in.u64());
    entry.quarantined = in.u8() != 0;
    entries_[node] = entry;
  }
}

}  // namespace hdtn::core
