#include "src/core/metadata_store.hpp"

#include <algorithm>

namespace hdtn::core {

std::unordered_map<FileId, MetadataStore::Record>::iterator
MetadataStore::evictionVictim() {
  auto victim = records_.end();
  for (auto it = records_.begin(); it != records_.end(); ++it) {
    if (victim == records_.end() ||
        it->second.md.popularity < victim->second.md.popularity ||
        (it->second.md.popularity == victim->second.md.popularity &&
         it->second.seq < victim->second.seq)) {
      victim = it;
    }
  }
  return victim;
}

bool MetadataStore::add(const Metadata& md) {
  auto it = records_.find(md.file);
  if (it != records_.end()) {
    if (md.popularity > it->second.md.popularity) {
      // Popularity refresh reorders byPopularity(): also a mutation.
      it->second.md.popularity = md.popularity;
      ++generation_;
    }
    return false;
  }
  if (capacity_ && records_.size() >= *capacity_) {
    auto victim = evictionVictim();
    if (victim != records_.end() &&
        md.popularity < victim->second.md.popularity) {
      // Admission control: the incoming record would be the next victim
      // itself, so shed it instead of churning the store.
      if (evictionHook_) evictionHook_(md);
      return false;
    }
    if (victim != records_.end()) {
      const Metadata evicted = victim->second.md;
      records_.erase(victim);
      if (evictionHook_) evictionHook_(evicted);
    }
  }
  records_.emplace(md.file, Record{md, nextSeq_++});
  ++generation_;
  return true;
}

bool MetadataStore::has(FileId file) const { return records_.contains(file); }

const Metadata* MetadataStore::get(FileId file) const {
  auto it = records_.find(file);
  return it == records_.end() ? nullptr : &it->second.md;
}

std::size_t MetadataStore::expire(SimTime now) {
  std::size_t dropped = 0;
  for (auto it = records_.begin(); it != records_.end();) {
    if (it->second.md.expired(now)) {
      it = records_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  if (dropped > 0) ++generation_;
  return dropped;
}

void MetadataStore::remove(FileId file) {
  if (records_.erase(file) > 0) {
    ++generation_;
  }
}

std::span<const Metadata* const> MetadataStore::all() const {
  if (allView_.generation != generation_) {
    allView_.items.clear();
    allView_.items.reserve(records_.size());
    for (const auto& [_, rec] : records_) allView_.items.push_back(&rec.md);
    std::sort(allView_.items.begin(), allView_.items.end(),
              [](const Metadata* a, const Metadata* b) {
                return a->file < b->file;
              });
    allView_.generation = generation_;
  }
  return allView_.items;
}

std::span<const Metadata* const> MetadataStore::byPopularity() const {
  if (popularityView_.generation != generation_) {
    const auto sorted = all();
    popularityView_.items.assign(sorted.begin(), sorted.end());
    std::stable_sort(popularityView_.items.begin(),
                     popularityView_.items.end(),
                     [](const Metadata* a, const Metadata* b) {
                       if (a->popularity != b->popularity) {
                         return a->popularity > b->popularity;
                       }
                       return a->file < b->file;
                     });
    popularityView_.generation = generation_;
  }
  return popularityView_.items;
}

void MetadataStore::saveState(Serializer& out) const {
  const auto sorted = all();
  out.u64(sorted.size());
  for (const Metadata* md : sorted) {
    md->saveState(out);
    out.u64(records_.at(md->file).seq);
  }
  out.u64(nextSeq_);
}

void MetadataStore::loadState(Deserializer& in) {
  // Raw insertion: a restore must reproduce the saved store exactly, never
  // re-run capacity eviction or fire the hook.
  records_.clear();
  ++generation_;
  const std::size_t count = in.length();
  for (std::size_t i = 0; i < count; ++i) {
    Record rec;
    rec.md.loadState(in);
    rec.seq = in.u64();
    records_.emplace(rec.md.file, std::move(rec));
  }
  nextSeq_ = in.u64();
}

}  // namespace hdtn::core
