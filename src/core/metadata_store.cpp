#include "src/core/metadata_store.hpp"

#include <algorithm>

namespace hdtn::core {

bool MetadataStore::add(const Metadata& md) {
  auto [it, inserted] = records_.try_emplace(md.file, md);
  if (inserted) {
    ++generation_;
  } else if (md.popularity > it->second.popularity) {
    // Popularity refresh reorders byPopularity(): also a mutation.
    it->second.popularity = md.popularity;
    ++generation_;
  }
  return inserted;
}

bool MetadataStore::has(FileId file) const { return records_.contains(file); }

const Metadata* MetadataStore::get(FileId file) const {
  auto it = records_.find(file);
  return it == records_.end() ? nullptr : &it->second;
}

std::size_t MetadataStore::expire(SimTime now) {
  const std::size_t dropped = std::erase_if(records_, [now](const auto& kv) {
    return kv.second.expired(now);
  });
  if (dropped > 0) ++generation_;
  return dropped;
}

void MetadataStore::remove(FileId file) {
  if (records_.erase(file) > 0) ++generation_;
}

std::span<const Metadata* const> MetadataStore::all() const {
  if (allView_.generation != generation_) {
    allView_.items.clear();
    allView_.items.reserve(records_.size());
    for (const auto& [_, md] : records_) allView_.items.push_back(&md);
    std::sort(allView_.items.begin(), allView_.items.end(),
              [](const Metadata* a, const Metadata* b) {
                return a->file < b->file;
              });
    allView_.generation = generation_;
  }
  return allView_.items;
}

std::span<const Metadata* const> MetadataStore::byPopularity() const {
  if (popularityView_.generation != generation_) {
    const auto sorted = all();
    popularityView_.items.assign(sorted.begin(), sorted.end());
    std::stable_sort(popularityView_.items.begin(),
                     popularityView_.items.end(),
                     [](const Metadata* a, const Metadata* b) {
                       if (a->popularity != b->popularity) {
                         return a->popularity > b->popularity;
                       }
                       return a->file < b->file;
                     });
    popularityView_.generation = generation_;
  }
  return popularityView_.items;
}

void MetadataStore::saveState(Serializer& out) const {
  const auto sorted = all();
  out.u64(sorted.size());
  for (const Metadata* md : sorted) md->saveState(out);
}

void MetadataStore::loadState(Deserializer& in) {
  records_.clear();
  ++generation_;
  const std::size_t count = in.length();
  for (std::size_t i = 0; i < count; ++i) {
    Metadata md;
    md.loadState(in);
    add(md);
  }
}

}  // namespace hdtn::core
