#include "src/core/metadata_store.hpp"

#include <algorithm>

namespace hdtn::core {

bool MetadataStore::add(const Metadata& md) {
  auto [it, inserted] = records_.try_emplace(md.file, md);
  if (!inserted && md.popularity > it->second.popularity) {
    it->second.popularity = md.popularity;
  }
  return inserted;
}

bool MetadataStore::has(FileId file) const { return records_.contains(file); }

const Metadata* MetadataStore::get(FileId file) const {
  auto it = records_.find(file);
  return it == records_.end() ? nullptr : &it->second;
}

std::size_t MetadataStore::expire(SimTime now) {
  return std::erase_if(records_, [now](const auto& kv) {
    return kv.second.expired(now);
  });
}

void MetadataStore::remove(FileId file) { records_.erase(file); }

std::vector<const Metadata*> MetadataStore::all() const {
  std::vector<const Metadata*> out;
  out.reserve(records_.size());
  for (const auto& [_, md] : records_) out.push_back(&md);
  std::sort(out.begin(), out.end(), [](const Metadata* a, const Metadata* b) {
    return a->file < b->file;
  });
  return out;
}

std::vector<const Metadata*> MetadataStore::byPopularity() const {
  std::vector<const Metadata*> out = all();
  std::stable_sort(out.begin(), out.end(),
                   [](const Metadata* a, const Metadata* b) {
                     if (a->popularity != b->popularity) {
                       return a->popularity > b->popularity;
                     }
                     return a->file < b->file;
                   });
  return out;
}

}  // namespace hdtn::core
