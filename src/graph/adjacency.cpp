#include "src/graph/adjacency.hpp"

#include <algorithm>
#include <deque>

namespace hdtn {

void AdjacencyGraph::addNode(NodeId n) { adj_.try_emplace(n); }

void AdjacencyGraph::addEdge(NodeId a, NodeId b) {
  if (a == b) return;
  addNode(a);
  addNode(b);
  const bool inserted = adj_[a].insert(b).second;
  adj_[b].insert(a);
  if (inserted) ++edgeCount_;
}

void AdjacencyGraph::removeEdge(NodeId a, NodeId b) {
  auto itA = adj_.find(a);
  auto itB = adj_.find(b);
  if (itA == adj_.end() || itB == adj_.end()) return;
  if (itA->second.erase(b) > 0) {
    itB->second.erase(a);
    --edgeCount_;
  }
}

void AdjacencyGraph::removeNode(NodeId n) {
  auto it = adj_.find(n);
  if (it == adj_.end()) return;
  for (NodeId peer : it->second) {
    adj_[peer].erase(n);
    --edgeCount_;
  }
  adj_.erase(it);
}

bool AdjacencyGraph::hasNode(NodeId n) const { return adj_.contains(n); }

bool AdjacencyGraph::hasEdge(NodeId a, NodeId b) const {
  auto it = adj_.find(a);
  return it != adj_.end() && it->second.contains(b);
}

std::size_t AdjacencyGraph::degree(NodeId n) const {
  auto it = adj_.find(n);
  return it == adj_.end() ? 0 : it->second.size();
}

std::vector<NodeId> AdjacencyGraph::nodes() const {
  std::vector<NodeId> out;
  out.reserve(adj_.size());
  for (const auto& [n, _] : adj_) out.push_back(n);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<NodeId> AdjacencyGraph::neighbors(NodeId n) const {
  std::vector<NodeId> out;
  auto it = adj_.find(n);
  if (it == adj_.end()) return out;
  out.assign(it->second.begin(), it->second.end());
  std::sort(out.begin(), out.end());
  return out;
}

const std::unordered_set<NodeId>* AdjacencyGraph::neighborSet(NodeId n) const {
  auto it = adj_.find(n);
  return it == adj_.end() ? nullptr : &it->second;
}

std::vector<std::vector<NodeId>> AdjacencyGraph::connectedComponents() const {
  std::vector<std::vector<NodeId>> components;
  std::unordered_set<NodeId> visited;
  for (NodeId start : nodes()) {
    if (visited.contains(start)) continue;
    std::vector<NodeId> component;
    std::deque<NodeId> frontier{start};
    visited.insert(start);
    while (!frontier.empty()) {
      NodeId cur = frontier.front();
      frontier.pop_front();
      component.push_back(cur);
      for (NodeId next : adj_.at(cur)) {
        if (visited.insert(next).second) frontier.push_back(next);
      }
    }
    std::sort(component.begin(), component.end());
    components.push_back(std::move(component));
  }
  std::sort(components.begin(), components.end(),
            [](const auto& a, const auto& b) { return a.front() < b.front(); });
  return components;
}

}  // namespace hdtn
