// Space-time graph over a contact trace (paper Section II-A: "A DTN can be
// described abstractly using a space time graph in which each edge
// corresponds to a contact").
//
// The central query is the *foremost journey*: the earliest time a message
// originating at a source node at a given instant can reach each other
// node, assuming transmission is free within a contact (every member of a
// clique contact can hear a broadcast). This is the mobility-limited optimum
// — no store-carry-forward protocol can beat it — and serves as the oracle
// baseline for both the routing substrate and file-delivery-delay analyses.
#pragma once

#include <optional>
#include <vector>

#include "src/trace/contact_trace.hpp"
#include "src/util/types.hpp"

namespace hdtn::graph {

/// One hop of a journey: at `time`, `from` handed the message to `to`
/// during some contact.
struct JourneyHop {
  SimTime time = 0;
  NodeId from;
  NodeId to;
};

/// A reconstructed foremost journey.
struct Journey {
  bool reachable = false;
  SimTime arrival = kTimeInfinity;
  std::vector<JourneyHop> hops;  ///< empty when source == destination
};

class SpaceTimeGraph {
 public:
  explicit SpaceTimeGraph(const trace::ContactTrace& trace);

  /// Earliest arrival time at every node for a message available at
  /// `source` from `startTime` on. Unreachable nodes get kTimeInfinity.
  /// A node "arrives" at itself at startTime.
  [[nodiscard]] std::vector<SimTime> earliestArrivals(NodeId source,
                                                      SimTime startTime) const;

  /// Foremost journey to one destination, with the hop sequence.
  [[nodiscard]] Journey foremostJourney(NodeId source, NodeId destination,
                                        SimTime startTime) const;

  /// Fraction of nodes reachable from `source` at `startTime` (excluding
  /// the source itself). 0 when the trace has fewer than 2 nodes.
  [[nodiscard]] double reachability(NodeId source, SimTime startTime) const;

  [[nodiscard]] std::size_t nodeCount() const { return nodeCount_; }

 private:
  struct Propagation {
    std::vector<SimTime> arrival;
    // Parent pointers for journey reconstruction.
    std::vector<NodeId> from;
    std::vector<SimTime> hopTime;
  };

  [[nodiscard]] Propagation propagate(NodeId source, SimTime startTime) const;

  std::size_t nodeCount_ = 0;
  std::vector<trace::Contact> contacts_;  // sorted by start
};

}  // namespace hdtn::graph
