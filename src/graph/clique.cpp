#include "src/graph/clique.hpp"

#include <algorithm>
#include <unordered_set>

namespace hdtn {
namespace {

// Bron-Kerbosch with pivoting. R: current clique, P: candidates, X: already
// processed. Sets are kept as sorted vectors; intersections are linear.
class BronKerbosch {
 public:
  explicit BronKerbosch(const AdjacencyGraph& graph) : graph_(graph) {}

  std::vector<std::vector<NodeId>> run() {
    std::vector<NodeId> r;
    std::vector<NodeId> p = graph_.nodes();
    std::vector<NodeId> x;
    expand(r, p, x);
    std::sort(out_.begin(), out_.end(), [](const auto& a, const auto& b) {
      if (a.size() != b.size()) return a.size() > b.size();
      return a < b;
    });
    return std::move(out_);
  }

 private:
  std::vector<NodeId> intersectNeighbors(const std::vector<NodeId>& set,
                                         NodeId v) const {
    std::vector<NodeId> out;
    const auto* nbrs = graph_.neighborSet(v);
    if (nbrs == nullptr) return out;
    for (NodeId n : set) {
      if (nbrs->contains(n)) out.push_back(n);
    }
    return out;
  }

  void expand(std::vector<NodeId>& r, std::vector<NodeId> p,
              std::vector<NodeId> x) {
    if (p.empty() && x.empty()) {
      if (!r.empty()) {
        std::vector<NodeId> clique = r;
        std::sort(clique.begin(), clique.end());
        out_.push_back(std::move(clique));
      }
      return;
    }
    // Pivot: the vertex in P union X with the most neighbors in P minimizes
    // branching.
    NodeId pivot;
    std::size_t best = 0;
    bool first = true;
    for (const auto& set : {p, x}) {
      for (NodeId v : set) {
        const std::size_t deg = intersectNeighbors(p, v).size();
        if (first || deg > best) {
          pivot = v;
          best = deg;
          first = false;
        }
      }
    }
    const auto* pivotNbrs = graph_.neighborSet(pivot);
    std::vector<NodeId> candidates;
    for (NodeId v : p) {
      if (pivotNbrs == nullptr || !pivotNbrs->contains(v)) {
        candidates.push_back(v);
      }
    }
    for (NodeId v : candidates) {
      r.push_back(v);
      expand(r, intersectNeighbors(p, v), intersectNeighbors(x, v));
      r.pop_back();
      p.erase(std::find(p.begin(), p.end(), v));
      x.push_back(v);
    }
  }

  const AdjacencyGraph& graph_;
  std::vector<std::vector<NodeId>> out_;
};

}  // namespace

std::vector<std::vector<NodeId>> maximalCliques(const AdjacencyGraph& graph) {
  return BronKerbosch(graph).run();
}

std::vector<std::vector<NodeId>> maximalCliquesContaining(
    const AdjacencyGraph& graph, NodeId node) {
  std::vector<std::vector<NodeId>> out;
  for (auto& clique : maximalCliques(graph)) {
    if (std::binary_search(clique.begin(), clique.end(), node)) {
      out.push_back(std::move(clique));
    }
  }
  return out;
}

std::vector<std::vector<NodeId>> partitionIntoCliques(
    const AdjacencyGraph& graph) {
  AdjacencyGraph work = graph;
  std::vector<std::vector<NodeId>> out;
  while (work.nodeCount() > 0) {
    auto cliques = maximalCliques(work);
    if (cliques.empty()) break;
    // maximalCliques sorts by (size desc, members asc), so front() is the
    // deterministic greedy choice.
    std::vector<NodeId> chosen = cliques.front();
    for (NodeId n : chosen) work.removeNode(n);
    out.push_back(std::move(chosen));
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.size() != b.size()) return a.size() > b.size();
    return a < b;
  });
  return out;
}

bool isClique(const AdjacencyGraph& graph,
              const std::vector<NodeId>& members) {
  for (std::size_t i = 0; i < members.size(); ++i) {
    for (std::size_t j = i + 1; j < members.size(); ++j) {
      if (!graph.hasEdge(members[i], members[j])) return false;
    }
  }
  return true;
}

}  // namespace hdtn
