#include "src/graph/clique.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <unordered_set>

namespace hdtn {
namespace {

constexpr std::size_t kWordBits = 64;

// Dense-bitset Bron-Kerbosch. NodeIds are mapped to indices 0..n-1 in
// ascending id order; vertex sets (P, X, neighbor rows) are bitsets, so set
// intersection is a word-wise AND and the pivot scan costs one popcount per
// member of P union X — O(|P|+|X|) words of work instead of the O(|P|^2)
// membership probing of the reference. The outer loop over vertices follows
// a degeneracy ordering, which bounds every top-level P to the vertex's
// later neighbors.
class DenseCliqueFinder {
 public:
  explicit DenseCliqueFinder(const AdjacencyGraph& graph)
      : ids_(graph.nodes()),
        n_(static_cast<std::uint32_t>(ids_.size())),
        words_((ids_.size() + kWordBits - 1) / kWordBits) {
    adj_.assign(static_cast<std::size_t>(n_) * words_, 0);
    // Per-depth scratch for expand(): child P, child X, and the pivot's
    // non-neighbor candidates. Sized once; recursion depth is at most n.
    scratch_.assign(static_cast<std::size_t>(n_) + 1,
                    std::vector<std::uint64_t>(3 * words_));
    std::unordered_map<NodeId, std::uint32_t> indexOf;
    indexOf.reserve(n_);
    for (std::uint32_t i = 0; i < n_; ++i) indexOf.emplace(ids_[i], i);
    indexOf_ = std::move(indexOf);
    for (std::uint32_t i = 0; i < n_; ++i) {
      for (NodeId nb : graph.neighbors(ids_[i])) {
        setBit(row(i), indexOf_.at(nb));
      }
    }
  }

  /// All maximal cliques, sorted (size desc, members asc).
  std::vector<std::vector<NodeId>> allMaximal() {
    enumerateRaw();
    return finish();
  }

  /// Maximal cliques containing `node`: Bron-Kerbosch seeded with R={node},
  /// P=N(node) — the search never leaves the closed neighborhood, so the
  /// rest of the graph is never enumerated.
  std::vector<std::vector<NodeId>> containing(NodeId node) {
    rawOut_.clear();
    auto it = indexOf_.find(node);
    if (it == indexOf_.end()) return {};
    const std::uint32_t v = it->second;
    std::vector<std::uint64_t> p(row(v), row(v) + words_);
    std::vector<std::uint64_t> x(words_, 0);
    std::vector<std::uint32_t> r(1, v);
    expand(r, p.data(), x.data(), 0);
    return finish();
  }

  /// Greedy clique partition: enumerate maximal cliques once, then per round
  /// pick the clique whose surviving members (not yet assigned) are largest
  /// (ties by lexicographically smallest member list) — equivalent to
  /// re-running enumeration on the shrinking residual graph, because every
  /// maximum clique of the residual graph is the restriction of some
  /// maximal clique of the original.
  std::vector<std::vector<NodeId>> partition() {
    if (n_ == 0) return {};
    enumerateRaw();
    std::vector<std::vector<std::uint32_t>> cliques = std::move(rawOut_);
    rawOut_.clear();

    std::vector<char> removed(n_, 0);
    std::uint32_t remaining = n_;
    std::vector<std::vector<NodeId>> parts;
    std::vector<std::uint32_t> best, surviving;
    while (remaining > 0) {
      best.clear();
      for (const auto& clique : cliques) {
        surviving.clear();
        for (std::uint32_t v : clique) {
          if (!removed[v]) surviving.push_back(v);
        }
        if (surviving.empty()) continue;
        if (surviving.size() > best.size() ||
            (surviving.size() == best.size() && surviving < best)) {
          best = surviving;
        }
      }
      for (std::uint32_t v : best) {
        removed[v] = 1;
        --remaining;
      }
      parts.push_back(toIds(best));
    }
    std::sort(parts.begin(), parts.end(), [](const auto& a, const auto& b) {
      if (a.size() != b.size()) return a.size() > b.size();
      return a < b;
    });
    return parts;
  }

 private:
  void enumerateRaw() {
    rawOut_.clear();
    if (n_ == 0) return;
    std::vector<std::uint64_t> p(words_), x(words_);
    std::vector<std::uint64_t> processed(words_, 0);
    std::vector<std::uint32_t> r;
    for (std::uint32_t v : degeneracyOrder()) {
      // P: neighbors later in the ordering; X: neighbors already processed.
      for (std::size_t w = 0; w < words_; ++w) {
        p[w] = row(v)[w] & ~processed[w];
        x[w] = row(v)[w] & processed[w];
      }
      r.assign(1, v);
      expand(r, p.data(), x.data(), 0);
      setBit(processed.data(), v);
    }
  }

  std::uint64_t* row(std::uint32_t v) {
    return adj_.data() + static_cast<std::size_t>(v) * words_;
  }
  static void setBit(std::uint64_t* bits, std::uint32_t v) {
    bits[v / kWordBits] |= std::uint64_t{1} << (v % kWordBits);
  }
  static void clearBit(std::uint64_t* bits, std::uint32_t v) {
    bits[v / kWordBits] &= ~(std::uint64_t{1} << (v % kWordBits));
  }
  bool isEmpty(const std::uint64_t* bits) const {
    for (std::size_t w = 0; w < words_; ++w) {
      if (bits[w] != 0) return false;
    }
    return true;
  }
  std::size_t intersectCount(const std::uint64_t* a,
                             const std::uint64_t* b) const {
    std::size_t count = 0;
    for (std::size_t w = 0; w < words_; ++w) {
      count += static_cast<std::size_t>(std::popcount(a[w] & b[w]));
    }
    return count;
  }
  template <typename Fn>
  void forEachBit(const std::uint64_t* bits, Fn&& fn) const {
    for (std::size_t w = 0; w < words_; ++w) {
      std::uint64_t word = bits[w];
      while (word != 0) {
        const auto bit = static_cast<std::uint32_t>(std::countr_zero(word));
        word &= word - 1;
        fn(static_cast<std::uint32_t>(w * kWordBits) + bit);
      }
    }
  }

  /// Smallest-last (degeneracy) ordering; ties by smallest id for
  /// determinism. Contact-window graphs are tiny, so the quadratic selection
  /// is cheaper than maintaining bucket queues.
  std::vector<std::uint32_t> degeneracyOrder() const {
    std::vector<std::uint32_t> degree(n_, 0);
    for (std::uint32_t v = 0; v < n_; ++v) {
      degree[v] = static_cast<std::uint32_t>(intersectCountAll(v));
    }
    std::vector<char> placed(n_, 0);
    std::vector<std::uint32_t> order;
    order.reserve(n_);
    for (std::uint32_t step = 0; step < n_; ++step) {
      std::uint32_t pick = std::numeric_limits<std::uint32_t>::max();
      for (std::uint32_t v = 0; v < n_; ++v) {
        if (placed[v]) continue;
        if (pick == std::numeric_limits<std::uint32_t>::max() ||
            degree[v] < degree[pick]) {
          pick = v;
        }
      }
      placed[pick] = 1;
      order.push_back(pick);
      const std::uint64_t* nbrs =
          adj_.data() + static_cast<std::size_t>(pick) * words_;
      for (std::size_t w = 0; w < words_; ++w) {
        std::uint64_t word = nbrs[w];
        while (word != 0) {
          const auto bit = static_cast<std::uint32_t>(std::countr_zero(word));
          word &= word - 1;
          const auto u = static_cast<std::uint32_t>(w * kWordBits) + bit;
          if (!placed[u] && degree[u] > 0) --degree[u];
        }
      }
    }
    return order;
  }
  std::size_t intersectCountAll(std::uint32_t v) const {
    const std::uint64_t* nbrs =
        adj_.data() + static_cast<std::size_t>(v) * words_;
    std::size_t count = 0;
    for (std::size_t w = 0; w < words_; ++w) {
      count += static_cast<std::size_t>(std::popcount(nbrs[w]));
    }
    return count;
  }

  void expand(std::vector<std::uint32_t>& r, std::uint64_t* p,
              std::uint64_t* x, std::size_t depth) {
    if (isEmpty(p) && isEmpty(x)) {
      rawOut_.emplace_back(r.begin(), r.end());
      std::sort(rawOut_.back().begin(), rawOut_.back().end());
      return;
    }
    // Pivot: the member of P union X with the most neighbors in P minimizes
    // branching. One AND+popcount pass per member.
    std::uint32_t pivot = 0;
    std::size_t bestDeg = 0;
    bool first = true;
    const auto consider = [&](std::uint32_t u) {
      const std::size_t deg = intersectCount(row(u), p);
      if (first || deg > bestDeg) {
        pivot = u;
        bestDeg = deg;
        first = false;
      }
    };
    forEachBit(p, consider);
    forEachBit(x, consider);

    // All per-branch sets live in this depth's scratch row: the recursive
    // call mutates its own P/X, which are refilled before every branch, so
    // no per-branch heap allocation is needed.
    std::uint64_t* np = scratch_[depth].data();
    std::uint64_t* nx = np + words_;
    std::uint64_t* candidates = np + 2 * words_;
    for (std::size_t w = 0; w < words_; ++w) {
      candidates[w] = p[w] & ~row(pivot)[w];
    }
    forEachBit(candidates, [&](std::uint32_t v) {
      for (std::size_t w = 0; w < words_; ++w) {
        np[w] = p[w] & row(v)[w];
        nx[w] = x[w] & row(v)[w];
      }
      r.push_back(v);
      expand(r, np, nx, depth + 1);
      r.pop_back();
      clearBit(p, v);
      setBit(x, v);
    });
  }

  std::vector<NodeId> toIds(const std::vector<std::uint32_t>& indices) const {
    std::vector<NodeId> out;
    out.reserve(indices.size());
    for (std::uint32_t v : indices) out.push_back(ids_[v]);
    return out;
  }

  std::vector<std::vector<NodeId>> finish() {
    std::vector<std::vector<NodeId>> out;
    out.reserve(rawOut_.size());
    for (const auto& clique : rawOut_) out.push_back(toIds(clique));
    rawOut_.clear();
    std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
      if (a.size() != b.size()) return a.size() > b.size();
      return a < b;
    });
    return out;
  }

  std::vector<NodeId> ids_;
  std::uint32_t n_;
  std::size_t words_;
  std::vector<std::uint64_t> adj_;
  std::vector<std::vector<std::uint64_t>> scratch_;
  std::unordered_map<NodeId, std::uint32_t> indexOf_;
  std::vector<std::vector<std::uint32_t>> rawOut_;
};

// Reference Bron-Kerbosch with pivoting. R: current clique, P: candidates,
// X: already processed. Sets are kept as sorted vectors; intersections are
// linear. Retained for the equivalence tests.
class BronKerboschReference {
 public:
  explicit BronKerboschReference(const AdjacencyGraph& graph)
      : graph_(graph) {}

  std::vector<std::vector<NodeId>> run() {
    std::vector<NodeId> r;
    std::vector<NodeId> p = graph_.nodes();
    std::vector<NodeId> x;
    expand(r, p, x);
    std::sort(out_.begin(), out_.end(), [](const auto& a, const auto& b) {
      if (a.size() != b.size()) return a.size() > b.size();
      return a < b;
    });
    return std::move(out_);
  }

 private:
  std::vector<NodeId> intersectNeighbors(const std::vector<NodeId>& set,
                                         NodeId v) const {
    std::vector<NodeId> out;
    const auto* nbrs = graph_.neighborSet(v);
    if (nbrs == nullptr) return out;
    for (NodeId n : set) {
      if (nbrs->contains(n)) out.push_back(n);
    }
    return out;
  }

  void expand(std::vector<NodeId>& r, std::vector<NodeId> p,
              std::vector<NodeId> x) {
    if (p.empty() && x.empty()) {
      if (!r.empty()) {
        std::vector<NodeId> clique = r;
        std::sort(clique.begin(), clique.end());
        out_.push_back(std::move(clique));
      }
      return;
    }
    // Pivot: the vertex in P union X with the most neighbors in P minimizes
    // branching.
    NodeId pivot;
    std::size_t best = 0;
    bool first = true;
    for (const auto& set : {p, x}) {
      for (NodeId v : set) {
        const std::size_t deg = intersectNeighbors(p, v).size();
        if (first || deg > best) {
          pivot = v;
          best = deg;
          first = false;
        }
      }
    }
    const auto* pivotNbrs = graph_.neighborSet(pivot);
    std::vector<NodeId> candidates;
    for (NodeId v : p) {
      if (pivotNbrs == nullptr || !pivotNbrs->contains(v)) {
        candidates.push_back(v);
      }
    }
    for (NodeId v : candidates) {
      r.push_back(v);
      expand(r, intersectNeighbors(p, v), intersectNeighbors(x, v));
      r.pop_back();
      p.erase(std::find(p.begin(), p.end(), v));
      x.push_back(v);
    }
  }

  const AdjacencyGraph& graph_;
  std::vector<std::vector<NodeId>> out_;
};

}  // namespace

std::vector<std::vector<NodeId>> maximalCliques(const AdjacencyGraph& graph) {
  return DenseCliqueFinder(graph).allMaximal();
}

std::vector<std::vector<NodeId>> maximalCliquesContaining(
    const AdjacencyGraph& graph, NodeId node) {
  return DenseCliqueFinder(graph).containing(node);
}

std::vector<std::vector<NodeId>> partitionIntoCliques(
    const AdjacencyGraph& graph) {
  return DenseCliqueFinder(graph).partition();
}

bool isClique(const AdjacencyGraph& graph,
              const std::vector<NodeId>& members) {
  for (std::size_t i = 0; i < members.size(); ++i) {
    for (std::size_t j = i + 1; j < members.size(); ++j) {
      if (!graph.hasEdge(members[i], members[j])) return false;
    }
  }
  return true;
}

std::vector<std::vector<NodeId>> maximalCliquesReference(
    const AdjacencyGraph& graph) {
  return BronKerboschReference(graph).run();
}

std::vector<std::vector<NodeId>> maximalCliquesContainingReference(
    const AdjacencyGraph& graph, NodeId node) {
  std::vector<std::vector<NodeId>> out;
  for (auto& clique : maximalCliquesReference(graph)) {
    if (std::binary_search(clique.begin(), clique.end(), node)) {
      out.push_back(std::move(clique));
    }
  }
  return out;
}

std::vector<std::vector<NodeId>> partitionIntoCliquesReference(
    const AdjacencyGraph& graph) {
  AdjacencyGraph work = graph;
  std::vector<std::vector<NodeId>> out;
  while (work.nodeCount() > 0) {
    auto cliques = maximalCliquesReference(work);
    if (cliques.empty()) break;
    // maximalCliques sorts by (size desc, members asc), so front() is the
    // deterministic greedy choice.
    std::vector<NodeId> chosen = cliques.front();
    for (NodeId n : chosen) work.removeNode(n);
    out.push_back(std::move(chosen));
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.size() != b.size()) return a.size() > b.size();
    return a < b;
  });
  return out;
}

}  // namespace hdtn
