#include "src/graph/space_time.hpp"

#include <algorithm>
#include <cassert>

namespace hdtn::graph {

SpaceTimeGraph::SpaceTimeGraph(const trace::ContactTrace& trace)
    : nodeCount_(trace.nodeCount()),
      contacts_(trace.contacts().begin(), trace.contacts().end()) {
  std::sort(contacts_.begin(), contacts_.end(),
            [](const trace::Contact& a, const trace::Contact& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.end < b.end;
            });
}

SpaceTimeGraph::Propagation SpaceTimeGraph::propagate(
    NodeId source, SimTime startTime) const {
  Propagation p;
  p.arrival.assign(nodeCount_, kTimeInfinity);
  p.from.assign(nodeCount_, NodeId());
  p.hopTime.assign(nodeCount_, 0);
  if (source.value >= nodeCount_) return p;
  p.arrival[source.value] = startTime;

  // Sweep contacts in start order; within a contact, a message held by any
  // member before the contact ends reaches every member at
  // max(contact.start, holder arrival). Overlapping contacts can feed each
  // other in either order, so iterate to a fixpoint; each pass can only
  // lower arrivals, and arrivals are bounded below, so this terminates (in
  // practice 2 passes, since a pass resolves all same-pass chains that run
  // forward in time).
  bool changed = true;
  while (changed) {
    changed = false;
    for (const trace::Contact& c : contacts_) {
      SimTime best = kTimeInfinity;
      for (NodeId m : c.members) {
        const SimTime a = p.arrival[m.value];
        if (a >= c.end) continue;
        best = std::min(best, std::max(a, c.start));
      }
      if (best >= c.end) continue;
      // The earliest holder relays; find it for parent tracking.
      NodeId relay;
      for (NodeId m : c.members) {
        const SimTime a = p.arrival[m.value];
        if (a < c.end && std::max(a, c.start) == best) {
          relay = m;
          break;
        }
      }
      for (NodeId m : c.members) {
        if (p.arrival[m.value] > best) {
          p.arrival[m.value] = best;
          p.from[m.value] = relay;
          p.hopTime[m.value] = best;
          changed = true;
        }
      }
    }
  }
  return p;
}

std::vector<SimTime> SpaceTimeGraph::earliestArrivals(
    NodeId source, SimTime startTime) const {
  return propagate(source, startTime).arrival;
}

Journey SpaceTimeGraph::foremostJourney(NodeId source, NodeId destination,
                                        SimTime startTime) const {
  Journey journey;
  if (destination.value >= nodeCount_) return journey;
  const Propagation p = propagate(source, startTime);
  if (p.arrival[destination.value] == kTimeInfinity) return journey;
  journey.reachable = true;
  journey.arrival = p.arrival[destination.value];
  // Walk parents back to the source.
  NodeId cursor = destination;
  while (cursor != source) {
    const NodeId parent = p.from[cursor.value];
    assert(parent.valid());
    journey.hops.push_back(
        JourneyHop{p.hopTime[cursor.value], parent, cursor});
    cursor = parent;
  }
  std::reverse(journey.hops.begin(), journey.hops.end());
  return journey;
}

double SpaceTimeGraph::reachability(NodeId source, SimTime startTime) const {
  if (nodeCount_ < 2) return 0.0;
  const auto arrivals = earliestArrivals(source, startTime);
  std::size_t reached = 0;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    if (i != source.value && arrivals[i] != kTimeInfinity) ++reached;
  }
  return static_cast<double>(reached) /
         static_cast<double>(nodeCount_ - 1);
}

}  // namespace hdtn::graph
