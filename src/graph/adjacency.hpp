// Undirected adjacency structure over NodeIds.
//
// The download layer builds one of these from hello-message neighbor sets
// each time a contact window opens, then enumerates maximal cliques on it
// (paper Section V: "each node can calculate all the maximum cliques
// containing it").
#pragma once

#include <cstddef>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/util/types.hpp"

namespace hdtn {

class AdjacencyGraph {
 public:
  /// Adds a node with no edges (idempotent).
  void addNode(NodeId n);

  /// Adds an undirected edge (idempotent); inserts endpoints as needed.
  /// Self-loops are ignored.
  void addEdge(NodeId a, NodeId b);

  void removeEdge(NodeId a, NodeId b);
  void removeNode(NodeId n);

  [[nodiscard]] bool hasNode(NodeId n) const;
  [[nodiscard]] bool hasEdge(NodeId a, NodeId b) const;
  [[nodiscard]] std::size_t nodeCount() const { return adj_.size(); }
  [[nodiscard]] std::size_t edgeCount() const { return edgeCount_; }
  [[nodiscard]] std::size_t degree(NodeId n) const;

  /// Sorted list of all nodes.
  [[nodiscard]] std::vector<NodeId> nodes() const;

  /// Sorted list of neighbors of n (empty if unknown).
  [[nodiscard]] std::vector<NodeId> neighbors(NodeId n) const;

  [[nodiscard]] const std::unordered_set<NodeId>* neighborSet(NodeId n) const;

  /// Connected components, each sorted; components sorted by smallest id.
  [[nodiscard]] std::vector<std::vector<NodeId>> connectedComponents() const;

 private:
  std::unordered_map<NodeId, std::unordered_set<NodeId>> adj_;
  std::size_t edgeCount_ = 0;
};

}  // namespace hdtn
