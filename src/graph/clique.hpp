// Maximal-clique enumeration.
//
// Broadcast-based file download (paper Section V) partitions the nodes in a
// contact window into cliques in which every member hears every other. Each
// node derives the graph from received hello messages and computes the
// maximal cliques containing it; we implement Bron-Kerbosch with pivoting,
// which is exact and fast at contact-window scale (tens of nodes).
#pragma once

#include <vector>

#include "src/graph/adjacency.hpp"
#include "src/util/types.hpp"

namespace hdtn {

/// All maximal cliques of the graph. Each clique is sorted ascending;
/// cliques are sorted by (size desc, members asc) for determinism.
[[nodiscard]] std::vector<std::vector<NodeId>> maximalCliques(
    const AdjacencyGraph& graph);

/// Maximal cliques that contain the given node.
[[nodiscard]] std::vector<std::vector<NodeId>> maximalCliquesContaining(
    const AdjacencyGraph& graph, NodeId node);

/// Greedily partitions the graph into disjoint cliques: repeatedly take the
/// largest maximal clique (ties by smallest member id), remove its nodes.
/// This is how the download layer assigns each node to exactly one broadcast
/// clique when cliques would otherwise overlap. Singleton nodes come last.
[[nodiscard]] std::vector<std::vector<NodeId>> partitionIntoCliques(
    const AdjacencyGraph& graph);

/// True if `members` forms a clique (every pair adjacent) in the graph.
[[nodiscard]] bool isClique(const AdjacencyGraph& graph,
                            const std::vector<NodeId>& members);

// --- naive reference implementations --------------------------------------
// The direct set-vector Bron-Kerbosch (O(|P|^2) pivot scan, full
// re-enumeration per partition round), retained for equivalence testing:
// each must produce output byte-identical to its optimized counterpart on
// any input. See graph_clique_test.cpp.

[[nodiscard]] std::vector<std::vector<NodeId>> maximalCliquesReference(
    const AdjacencyGraph& graph);

[[nodiscard]] std::vector<std::vector<NodeId>> maximalCliquesContainingReference(
    const AdjacencyGraph& graph, NodeId node);

[[nodiscard]] std::vector<std::vector<NodeId>> partitionIntoCliquesReference(
    const AdjacencyGraph& graph);

}  // namespace hdtn
