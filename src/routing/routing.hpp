// Store-carry-forward unicast routing over contact traces.
//
// The DTN foundation the paper builds on (Section II-A cites the DTNRG
// architecture and the routing literature): messages travel between mobile
// nodes by being stored, carried, and forwarded across contacts. This
// substrate implements the classic protocol family used as baselines
// throughout that literature —
//   direct delivery   : the source holds the message until it meets the
//                       destination (1 copy, minimal overhead),
//   epidemic          : flood every contact (delay-optimal among protocols,
//                       maximal overhead),
//   spray-and-wait    : binary spray of L copies, then direct-deliver
//                       (Spyropoulos et al.),
//   PRoPHET           : probabilistic forwarding on delivery
//                       predictabilities with transitivity and aging
//                       (Lindgren et al., cited as [10] in the paper).
// The space-time-graph oracle (graph/space_time.hpp) gives the
// mobility-limited optimum for the same workload.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/trace/contact_trace.hpp"
#include "src/util/random.hpp"
#include "src/util/types.hpp"

namespace hdtn::routing {

struct MessageTag {};
using MessageId = Id<MessageTag>;

struct RoutingMessage {
  MessageId id;
  NodeId source;
  NodeId destination;
  SimTime createdAt = 0;
  Duration ttl = kTimeInfinity;  ///< relative; kTimeInfinity = no expiry

  [[nodiscard]] SimTime expiresAt() const {
    return ttl == kTimeInfinity ? kTimeInfinity : createdAt + ttl;
  }
};

enum class RoutingAlgorithm {
  kDirectDelivery,
  kEpidemic,
  kSprayAndWait,
  kProphet,
};

[[nodiscard]] const char* routingAlgorithmName(RoutingAlgorithm algorithm);

/// What a full buffer evicts to admit a new message.
enum class DropPolicy {
  kDropOldest,  ///< evict the message created longest ago (FIFO-ish)
  kDropYoungest,  ///< evict the most recently created message
};

struct RoutingParams {
  RoutingAlgorithm algorithm = RoutingAlgorithm::kEpidemic;
  /// Spray-and-wait: initial copy budget L (binary spray).
  int sprayCopies = 8;
  /// Per-node buffer capacity in messages; 0 = unbounded. A full buffer
  /// applies dropPolicy; the incoming message always wins over the evicted
  /// one (standard DTN buffer management semantics).
  std::size_t bufferCapacity = 0;
  DropPolicy dropPolicy = DropPolicy::kDropOldest;
  /// When true, peers exchange Bloom-filter summary vectors before
  /// transferring (Vahdat-Becker epidemic routing): a false positive makes
  /// the sender skip a message the receiver actually lacks. 0 disables.
  double summaryVectorFalsePositiveRate = 0.0;
  /// PRoPHET constants (defaults from the original paper).
  double prophetPInit = 0.75;
  double prophetBeta = 0.25;
  double prophetGamma = 0.98;       ///< aging base
  Duration prophetAgingUnit = 600;  ///< seconds per aging step
};

struct RoutingResult {
  std::size_t messages = 0;
  std::size_t delivered = 0;
  double deliveryRatio = 0.0;
  /// Mean delay of delivered messages, seconds.
  double meanDelay = 0.0;
  /// Total transmissions (copies handed over), including delivery hops.
  std::uint64_t forwards = 0;
  /// forwards / delivered; lower is cheaper. 0 when nothing delivered.
  double overheadRatio = 0.0;
};

/// Generates a uniform random workload: `count` messages with distinct
/// random source/destination pairs, creation times uniform in
/// [0, horizon), and the given TTL.
[[nodiscard]] std::vector<RoutingMessage> makeUniformWorkload(
    std::size_t count, std::size_t nodeCount, SimTime horizon, Duration ttl,
    Rng& rng);

/// Runs one protocol over the trace and workload. Deterministic.
[[nodiscard]] RoutingResult simulateRouting(
    const trace::ContactTrace& trace,
    const std::vector<RoutingMessage>& workload,
    const RoutingParams& params);

/// The mobility-limited optimum for the same workload, from the space-time
/// graph: a message is deliverable iff a journey exists within its TTL;
/// delays are foremost-journey delays.
[[nodiscard]] RoutingResult oracleRouting(
    const trace::ContactTrace& trace,
    const std::vector<RoutingMessage>& workload);

/// PRoPHET delivery-predictability table of one node (exposed for tests).
class ProphetTable {
 public:
  explicit ProphetTable(const RoutingParams& params) : params_(params) {}

  /// P(self, peer), aged to `now`.
  [[nodiscard]] double predictability(NodeId peer, SimTime now) const;

  /// Direct-encounter update: P += (1 - P) * pInit.
  void onEncounter(NodeId peer, SimTime now);

  /// Transitive update through an encountered peer's table.
  void onTransitive(NodeId peer, const ProphetTable& peerTable, SimTime now);

 private:
  struct Entry {
    double value = 0.0;
    SimTime updatedAt = 0;
  };
  [[nodiscard]] double aged(const Entry& entry, SimTime now) const;

  const RoutingParams& params_;
  std::unordered_map<NodeId, Entry> entries_;
};

}  // namespace hdtn::routing
