#include "src/routing/routing.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <optional>

#include "src/graph/space_time.hpp"
#include "src/util/bloom.hpp"

namespace hdtn::routing {

const char* routingAlgorithmName(RoutingAlgorithm algorithm) {
  switch (algorithm) {
    case RoutingAlgorithm::kDirectDelivery: return "direct";
    case RoutingAlgorithm::kEpidemic: return "epidemic";
    case RoutingAlgorithm::kSprayAndWait: return "spray-and-wait";
    case RoutingAlgorithm::kProphet: return "prophet";
  }
  return "?";
}

std::vector<RoutingMessage> makeUniformWorkload(std::size_t count,
                                                std::size_t nodeCount,
                                                SimTime horizon, Duration ttl,
                                                Rng& rng) {
  assert(nodeCount >= 2);
  std::vector<RoutingMessage> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    RoutingMessage m;
    m.id = MessageId(static_cast<std::uint32_t>(i));
    m.source = NodeId(static_cast<std::uint32_t>(rng.pickIndex(nodeCount)));
    do {
      m.destination =
          NodeId(static_cast<std::uint32_t>(rng.pickIndex(nodeCount)));
    } while (m.destination == m.source);
    m.createdAt = rng.uniformInt(0, std::max<SimTime>(0, horizon - 1));
    m.ttl = ttl;
    out.push_back(m);
  }
  return out;
}

double ProphetTable::aged(const Entry& entry, SimTime now) const {
  if (now <= entry.updatedAt || params_.prophetAgingUnit <= 0) {
    return entry.value;
  }
  const double steps =
      static_cast<double>(now - entry.updatedAt) /
      static_cast<double>(params_.prophetAgingUnit);
  return entry.value * std::pow(params_.prophetGamma, steps);
}

double ProphetTable::predictability(NodeId peer, SimTime now) const {
  auto it = entries_.find(peer);
  return it == entries_.end() ? 0.0 : aged(it->second, now);
}

void ProphetTable::onEncounter(NodeId peer, SimTime now) {
  Entry& e = entries_[peer];
  const double current = aged(e, now);
  e.value = current + (1.0 - current) * params_.prophetPInit;
  e.updatedAt = now;
}

void ProphetTable::onTransitive(NodeId peer, const ProphetTable& peerTable,
                                SimTime now) {
  const double toPeer = predictability(peer, now);
  if (toPeer <= 0.0) return;
  for (const auto& [dest, entry] : peerTable.entries_) {
    if (dest == peer) continue;
    const double throughPeer =
        toPeer * peerTable.aged(entry, now) * params_.prophetBeta;
    Entry& mine = entries_[dest];
    const double current = aged(mine, now);
    if (throughPeer > current) {
      mine.value = throughPeer;
      mine.updatedAt = now;
    } else {
      mine.value = current;
      mine.updatedAt = now;
    }
  }
}

namespace {

// Per-node routing state during a simulation run.
struct NodeState {
  // message id -> remaining copy budget (spray-and-wait; epidemic and
  // prophet carry "1" as a flag).
  std::unordered_map<MessageId, int> carried;
  std::optional<ProphetTable> prophet;
};

class Run {
 public:
  Run(const trace::ContactTrace& trace,
      const std::vector<RoutingMessage>& workload,
      const RoutingParams& params)
      : trace_(trace), workload_(workload), params_(params) {
    nodes_.resize(trace.nodeCount());
    if (params_.algorithm == RoutingAlgorithm::kProphet) {
      for (auto& n : nodes_) n.prophet.emplace(params_);
    }
    deliveredAt_.assign(workload.size(), kTimeInfinity);
  }

  RoutingResult run() {
    // Merge creations and contacts on the time axis: at each contact,
    // first inject messages created before it.
    std::vector<std::size_t> creationOrder(workload_.size());
    for (std::size_t i = 0; i < workload_.size(); ++i) creationOrder[i] = i;
    std::sort(creationOrder.begin(), creationOrder.end(),
              [this](std::size_t a, std::size_t b) {
                return workload_[a].createdAt < workload_[b].createdAt;
              });
    std::size_t nextCreation = 0;
    for (const trace::Contact& contact : trace_.contacts()) {
      while (nextCreation < creationOrder.size() &&
             workload_[creationOrder[nextCreation]].createdAt <=
                 contact.start) {
        inject(workload_[creationOrder[nextCreation]]);
        ++nextCreation;
      }
      processContact(contact);
    }

    RoutingResult result;
    result.messages = workload_.size();
    double delaySum = 0.0;
    for (std::size_t i = 0; i < workload_.size(); ++i) {
      if (deliveredAt_[i] == kTimeInfinity) continue;
      ++result.delivered;
      delaySum += static_cast<double>(deliveredAt_[i] -
                                      workload_[i].createdAt);
    }
    result.forwards = forwards_;
    if (result.messages > 0) {
      result.deliveryRatio = static_cast<double>(result.delivered) /
                             static_cast<double>(result.messages);
    }
    if (result.delivered > 0) {
      result.meanDelay = delaySum / static_cast<double>(result.delivered);
      result.overheadRatio = static_cast<double>(forwards_) /
                             static_cast<double>(result.delivered);
    }
    return result;
  }

 private:
  // Admits a message into a node's buffer, evicting per the drop policy
  // when full. Returns false when the buffer rejected the message (it was
  // the eviction victim itself).
  bool admit(NodeState& node, MessageId id, int copies) {
    if (params_.bufferCapacity > 0 &&
        node.carried.size() >= params_.bufferCapacity) {
      // Pick the victim among current occupants plus the newcomer.
      MessageId victim = id;
      SimTime victimCreated = workload_[id.value].createdAt;
      for (const auto& [held, _] : node.carried) {
        const SimTime created = workload_[held.value].createdAt;
        const bool worse = params_.dropPolicy == DropPolicy::kDropOldest
                               ? created < victimCreated ||
                                     (created == victimCreated &&
                                      held < victim)
                               : created > victimCreated ||
                                     (created == victimCreated &&
                                      held > victim);
        if (worse) {
          victim = held;
          victimCreated = created;
        }
      }
      if (victim == id) return false;
      node.carried.erase(victim);
    }
    node.carried[id] = copies;
    return true;
  }

  void inject(const RoutingMessage& m) {
    if (m.source.value >= nodes_.size()) return;
    const int copies = params_.algorithm == RoutingAlgorithm::kSprayAndWait
                           ? std::max(1, params_.sprayCopies)
                           : 1;
    admit(nodes_[m.source.value], m.id, copies);
  }

  void expire(NodeState& node, SimTime now) {
    std::erase_if(node.carried, [&](const auto& kv) {
      const RoutingMessage& m = workload_[kv.first.value];
      return now >= m.expiresAt() ||
             deliveredAt_[kv.first.value] != kTimeInfinity;
    });
  }

  void processContact(const trace::Contact& contact) {
    const SimTime now = contact.start;
    for (NodeId n : contact.members) {
      if (n.value < nodes_.size()) expire(nodes_[n.value], now);
    }
    // Clique contacts decompose into pairwise exchanges (unicast routing
    // uses pairwise links; the paper's broadcast insight is specific to
    // content distribution).
    for (std::size_t i = 0; i < contact.members.size(); ++i) {
      for (std::size_t j = i + 1; j < contact.members.size(); ++j) {
        pairExchange(contact.members[i], contact.members[j], now);
      }
    }
  }

  void pairExchange(NodeId a, NodeId b, SimTime now) {
    if (a.value >= nodes_.size() || b.value >= nodes_.size()) return;
    NodeState& na = nodes_[a.value];
    NodeState& nb = nodes_[b.value];
    if (params_.algorithm == RoutingAlgorithm::kProphet) {
      na.prophet->onEncounter(b, now);
      nb.prophet->onEncounter(a, now);
      na.prophet->onTransitive(b, *nb.prophet, now);
      nb.prophet->onTransitive(a, *na.prophet, now);
    }
    // Optional summary-vector exchange: each side summarizes its buffer
    // once; the other side consults the summary instead of ground truth.
    std::optional<BloomFilter> summaryOfA, summaryOfB;
    if (params_.summaryVectorFalsePositiveRate > 0.0) {
      summaryOfA = summarize(na);
      summaryOfB = summarize(nb);
    }
    directionalExchange(a, na, b, nb, now,
                        summaryOfB ? &*summaryOfB : nullptr);
    directionalExchange(b, nb, a, na, now,
                        summaryOfA ? &*summaryOfA : nullptr);
  }

  BloomFilter summarize(const NodeState& node) const {
    BloomFilter filter = BloomFilter::forCapacity(
        std::max<std::size_t>(8, node.carried.size()),
        params_.summaryVectorFalsePositiveRate);
    for (const auto& [id, _] : node.carried) filter.insert(id.value);
    return filter;
  }

  void directionalExchange(NodeId /*from*/, NodeState& sender, NodeId to,
                           NodeState& receiver, SimTime now,
                           const BloomFilter* receiverSummary = nullptr) {
    std::vector<MessageId> toHandle;
    for (const auto& [id, copies] : sender.carried) toHandle.push_back(id);
    std::sort(toHandle.begin(), toHandle.end());
    for (MessageId id : toHandle) {
      const RoutingMessage& m = workload_[id.value];
      if (deliveredAt_[id.value] != kTimeInfinity) continue;
      if (now >= m.expiresAt()) continue;
      if (m.destination == to) {
        deliveredAt_[id.value] = now;
        ++forwards_;
        continue;
      }
      if (receiverSummary != nullptr) {
        // The sender only knows the summary; a false positive hides a
        // genuinely missing message.
        if (receiverSummary->mayContain(id.value)) continue;
      } else if (receiver.carried.contains(id)) {
        continue;
      }
      if (receiver.carried.contains(id)) continue;
      switch (params_.algorithm) {
        case RoutingAlgorithm::kDirectDelivery:
          break;  // only delivery hops
        case RoutingAlgorithm::kEpidemic:
          if (admit(receiver, id, 1)) ++forwards_;
          break;
        case RoutingAlgorithm::kSprayAndWait: {
          int& copies = sender.carried[id];
          if (copies > 1) {
            const int given = copies / 2;  // binary spray
            if (admit(receiver, id, given)) {
              copies -= given;
              ++forwards_;
            }
          }
          break;
        }
        case RoutingAlgorithm::kProphet: {
          const double mine =
              sender.prophet->predictability(m.destination, now);
          const double theirs =
              receiver.prophet->predictability(m.destination, now);
          if (theirs > mine) {
            if (admit(receiver, id, 1)) ++forwards_;
          }
          break;
        }
      }
    }
  }

  const trace::ContactTrace& trace_;
  const std::vector<RoutingMessage>& workload_;
  const RoutingParams& params_;
  std::vector<NodeState> nodes_;
  std::vector<SimTime> deliveredAt_;
  std::uint64_t forwards_ = 0;
};

}  // namespace

RoutingResult simulateRouting(const trace::ContactTrace& trace,
                              const std::vector<RoutingMessage>& workload,
                              const RoutingParams& params) {
  return Run(trace, workload, params).run();
}

RoutingResult oracleRouting(const trace::ContactTrace& trace,
                            const std::vector<RoutingMessage>& workload) {
  const graph::SpaceTimeGraph stg(trace);
  RoutingResult result;
  result.messages = workload.size();
  double delaySum = 0.0;
  // Group by (source, createdAt) to reuse propagation when possible.
  std::map<std::pair<NodeId, SimTime>, std::vector<SimTime>> cache;
  for (const RoutingMessage& m : workload) {
    auto key = std::make_pair(m.source, m.createdAt);
    auto it = cache.find(key);
    if (it == cache.end()) {
      it = cache.emplace(key, stg.earliestArrivals(m.source, m.createdAt))
               .first;
    }
    const SimTime arrival = it->second[m.destination.value];
    if (arrival == kTimeInfinity || arrival >= m.expiresAt()) continue;
    ++result.delivered;
    delaySum += static_cast<double>(arrival - m.createdAt);
  }
  if (result.messages > 0) {
    result.deliveryRatio = static_cast<double>(result.delivered) /
                           static_cast<double>(result.messages);
  }
  if (result.delivered > 0) {
    result.meanDelay = delaySum / static_cast<double>(result.delivered);
  }
  return result;
}

}  // namespace hdtn::routing
