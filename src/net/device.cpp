#include "src/net/device.hpp"

#include <algorithm>

namespace hdtn::net {
namespace {

std::size_t outcomeIndex(RxOutcome outcome) {
  return static_cast<std::size_t>(outcome);
}

}  // namespace

Device::Device(NodeId id, core::NodeOptions options,
               const core::PublisherRegistry* registry)
    : node_(id, options), registry_(registry) {
  if (registry_ != nullptr) {
    node_.setMetadataVerifier([this](const core::Metadata& md) {
      return registry_->verify(md);
    });
  }
}

Bytes Device::makeHelloFrame(SimTime now) {
  HelloMessage hello;
  hello.sender = id();
  for (const auto& [peer, when] : heard_) {
    if (now - when <= kHelloNeighborWindow) {
      hello.heardNeighbors.push_back(peer);
    }
  }
  std::sort(hello.heardNeighbors.begin(), hello.heardNeighbors.end());
  hello.queries = node_.activeQueryTexts(now);
  // Wanted URIs come from the held metadata of selected files.
  for (FileId file : node_.wantedFilesView(now)) {
    const core::Metadata* md = node_.metadata().get(file);
    if (md != nullptr) hello.wantedUris.push_back(md->uri);
  }
  return encodeHello(hello);
}

std::optional<Bytes> Device::makeMetadataFrame(FileId file) const {
  const core::Metadata* md = node_.metadata().get(file);
  if (md == nullptr) return std::nullopt;
  return encodeMetadata(*md);
}

std::optional<Bytes> Device::makePieceFrame(const core::FileCatalog& catalog,
                                            FileId file,
                                            std::uint32_t piece) const {
  if (!node_.pieces().hasPiece(file, piece)) return std::nullopt;
  const core::FileInfo* info = catalog.find(file);
  if (info == nullptr) return std::nullopt;
  PieceMessage header;
  header.sender = id();
  header.file = file;
  header.pieceIndex = piece;
  return encodePiece(header, core::makePieceBytes(*info, piece));
}

RxOutcome Device::receive(std::span<const std::uint8_t> frame, SimTime now) {
  const auto record = [this](RxOutcome outcome) {
    ++counts_[outcomeIndex(outcome)];
    return outcome;
  };
  const auto malformed = [this, &record](DecodeError error) {
    lastDecodeError_ = error;
    return record(RxOutcome::kMalformed);
  };
  const auto kind = peekKind(frame);
  if (!kind) return malformed(kind.error);
  switch (*kind) {
    case WireKind::kHello: {
      const auto hello = decodeHello(frame);
      if (!hello) return malformed(hello.error);
      heard_[hello->sender] = now;
      node_.storePeerQueries(hello->sender, hello->queries, now);
      node_.storePeerWants(hello->wantedUris, now);
      return record(RxOutcome::kHello);
    }
    case WireKind::kMetadata: {
      const auto md = decodeMetadata(frame);
      if (!md) return malformed(md.error);
      if (node_.metadata().has(md->file)) {
        return record(RxOutcome::kMetadataDuplicate);
      }
      node_.acceptMetadata(*md, now);
      if (!node_.metadata().has(md->file)) {
        // The verifier refused it (or it was expired).
        return record(RxOutcome::kMetadataRejected);
      }
      return record(RxOutcome::kMetadataStored);
    }
    case WireKind::kPiece: {
      const auto piece = decodePiece(frame);
      if (!piece) return malformed(piece.error);
      const core::Metadata* md = node_.metadata().get(piece->header.file);
      if (md == nullptr) {
        // Without metadata there is no checksum to verify against; a
        // device never stores unverifiable payload.
        return record(RxOutcome::kPieceUnknown);
      }
      if (piece->header.pieceIndex >= md->pieceCount()) {
        return record(RxOutcome::kPieceCorrupt);
      }
      if (node_.pieces().hasPiece(piece->header.file,
                                  piece->header.pieceIndex)) {
        return record(RxOutcome::kPieceDuplicate);
      }
      const Sha1Digest digest = Sha1::hash(std::span<const std::uint8_t>(
          piece->payload.data(), piece->payload.size()));
      if (digest != md->pieceChecksums[piece->header.pieceIndex]) {
        return record(RxOutcome::kPieceCorrupt);
      }
      node_.acceptPiece(piece->header.file, piece->header.pieceIndex,
                        md->pieceCount(), now);
      return record(RxOutcome::kPieceStored);
    }
  }
  return record(RxOutcome::kMalformed);
}

std::uint64_t Device::outcomeCount(RxOutcome outcome) const {
  return counts_[outcomeIndex(outcome)];
}

std::optional<Bytes> LossyLink::transfer(const Bytes& frame) {
  if (rng_.chance(dropRate_)) {
    ++dropped_;
    return std::nullopt;
  }
  Bytes out = frame;
  if (!out.empty() && rng_.chance(corruptRate_)) {
    const std::size_t pos = rng_.pickIndex(out.size());
    out[pos] ^= static_cast<std::uint8_t>(1 + rng_.pickIndex(255));
    ++corrupted_;
  }
  return out;
}

}  // namespace hdtn::net
