// Device-level protocol endpoint.
//
// The simulation engine exchanges typed objects for speed; a real
// deployment exchanges *bytes* over a lossy radio. Device wraps a
// core::Node behind the wire codec and the integrity machinery the paper's
// metadata carries: incoming frames are decoded defensively, metadata is
// (optionally) checked against the publisher registry, and pieces are
// verified against the SHA-1 checksums in the held metadata before they
// enter the store. A LossyLink models the radio: frames are dropped or
// corrupted with configurable probability, and the tests drive a full
// file transfer across it to completion.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/core/file_catalog.hpp"
#include "src/core/metadata.hpp"
#include "src/core/node.hpp"
#include "src/faults/faults.hpp"
#include "src/net/codec.hpp"
#include "src/util/random.hpp"
#include "src/util/types.hpp"

namespace hdtn::net {

/// Outcome of feeding one received frame to a device.
enum class RxOutcome {
  kMalformed,          ///< frame failed to decode
  kHello,              ///< hello processed
  kMetadataStored,     ///< new metadata accepted
  kMetadataRejected,   ///< failed publisher verification
  kMetadataDuplicate,  ///< already held
  kPieceStored,        ///< payload verified and stored
  kPieceCorrupt,       ///< checksum mismatch, payload dropped
  kPieceUnknown,       ///< no metadata for the file: cannot verify, dropped
  kPieceDuplicate,     ///< piece already held
};

class Device {
 public:
  /// `registry`: when non-null, received metadata must verify against it.
  Device(NodeId id, core::NodeOptions options,
         const core::PublisherRegistry* registry = nullptr);

  [[nodiscard]] core::Node& node() { return node_; }
  [[nodiscard]] const core::Node& node() const { return node_; }
  [[nodiscard]] NodeId id() const { return node_.id(); }

  // --- transmit side ------------------------------------------------------

  /// Encoded hello beacon (neighbors from prior receptions, own queries,
  /// wanted URIs).
  [[nodiscard]] Bytes makeHelloFrame(SimTime now);

  /// Encodes one held metadata record; nullopt when not held.
  [[nodiscard]] std::optional<Bytes> makeMetadataFrame(FileId file) const;

  /// Encodes one held piece with its payload regenerated from the catalog
  /// content model; nullopt when the piece (or its metadata) is not held.
  [[nodiscard]] std::optional<Bytes> makePieceFrame(
      const core::FileCatalog& catalog, FileId file,
      std::uint32_t piece) const;

  // --- receive side ---------------------------------------------------------

  /// Decodes and processes one frame.
  RxOutcome receive(std::span<const std::uint8_t> frame, SimTime now);

  /// Telemetry counters, indexed by RxOutcome.
  [[nodiscard]] std::uint64_t outcomeCount(RxOutcome outcome) const;

  /// Typed cause of the most recent kMalformed outcome (kNone before the
  /// first one). Diagnostic only: a radio log can say *why* a frame was
  /// rejected without the device keeping the frame around.
  [[nodiscard]] DecodeError lastDecodeError() const {
    return lastDecodeError_;
  }

 private:
  core::Node node_;
  const core::PublisherRegistry* registry_;
  std::uint64_t counts_[9] = {};
  DecodeError lastDecodeError_ = DecodeError::kNone;
  // Last-heard times for the hello neighbor window.
  std::unordered_map<NodeId, SimTime> heard_;
};

/// A lossy broadcast channel: each frame is independently dropped with
/// dropRate; surviving frames have one random byte flipped with
/// corruptRate. Deterministic in the Rng.
class LossyLink {
 public:
  LossyLink(double dropRate, double corruptRate, Rng rng)
      : dropRate_(dropRate), corruptRate_(corruptRate), rng_(rng) {}

  /// Radio view of a fault configuration: messageLossRate becomes the
  /// frame drop rate and pieceCorruptionRate the byte-corruption rate, so
  /// the byte-level device path and the engine's fault plan share one
  /// vocabulary (scenario files drive both).
  LossyLink(const faults::FaultParams& faults, Rng rng)
      : LossyLink(faults.messageLossRate, faults.pieceCorruptionRate, rng) {}

  /// Returns the frame as the receiver would see it; nullopt = dropped.
  [[nodiscard]] std::optional<Bytes> transfer(const Bytes& frame);

  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t corrupted() const { return corrupted_; }

 private:
  double dropRate_;
  double corruptRate_;
  Rng rng_;
  std::uint64_t dropped_ = 0;
  std::uint64_t corrupted_ = 0;
};

}  // namespace hdtn::net
