// Binary wire codec for the protocol messages.
//
// A compact, versioned, self-delimiting encoding for hello messages,
// metadata records, and piece messages, so nodes (or a future on-device
// deployment) can exchange them over any datagram transport. Integers use
// LEB128 varints; strings and blobs are length-prefixed. Decoding is
// defensive: it never reads past the buffer and rejects malformed input —
// DTN radios deliver garbage more often than not.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/core/metadata.hpp"
#include "src/net/message.hpp"

namespace hdtn::net {

using Bytes = std::vector<std::uint8_t>;

/// Append-only encoder.
class Encoder {
 public:
  void writeVarint(std::uint64_t value);
  void writeBytes(std::span<const std::uint8_t> data);
  void writeString(std::string_view s);
  void writeDigest(const Sha1Digest& digest);

  [[nodiscard]] const Bytes& buffer() const { return buffer_; }
  [[nodiscard]] Bytes take() { return std::move(buffer_); }

 private:
  Bytes buffer_;
};

/// Bounds-checked decoder; every read reports failure via std::optional.
class Decoder {
 public:
  explicit Decoder(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::optional<std::uint64_t> readVarint();
  [[nodiscard]] std::optional<std::string> readString(
      std::size_t maxLength = 1 << 20);
  [[nodiscard]] std::optional<Bytes> readBlob(
      std::size_t maxLength = 1 << 20);
  [[nodiscard]] std::optional<Sha1Digest> readDigest();

  [[nodiscard]] bool atEnd() const { return offset_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const {
    return data_.size() - offset_;
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t offset_ = 0;
};

/// Message kind tags on the wire.
enum class WireKind : std::uint8_t {
  kHello = 1,
  kMetadata = 2,
  kPiece = 3,
};

/// Current codec version, first byte of every frame.
inline constexpr std::uint8_t kCodecVersion = 1;

// --- frame encoders -------------------------------------------------------

[[nodiscard]] Bytes encodeHello(const HelloMessage& hello);
[[nodiscard]] Bytes encodeMetadata(const core::Metadata& metadata);
/// `payload` is the piece content (may be empty for header-only tests).
[[nodiscard]] Bytes encodePiece(const PieceMessage& piece,
                                std::span<const std::uint8_t> payload);

// --- frame decoders -------------------------------------------------------

/// Peeks the kind of a frame without consuming it. nullopt on malformed.
[[nodiscard]] std::optional<WireKind> peekKind(
    std::span<const std::uint8_t> frame);

[[nodiscard]] std::optional<HelloMessage> decodeHello(
    std::span<const std::uint8_t> frame);
[[nodiscard]] std::optional<core::Metadata> decodeMetadata(
    std::span<const std::uint8_t> frame);

struct DecodedPiece {
  PieceMessage header;
  Bytes payload;
};
[[nodiscard]] std::optional<DecodedPiece> decodePiece(
    std::span<const std::uint8_t> frame);

}  // namespace hdtn::net
