// Binary wire codec for the protocol messages.
//
// A compact, versioned, self-delimiting encoding for hello messages,
// metadata records, and piece messages, so nodes (or a future on-device
// deployment) can exchange them over any datagram transport. Integers use
// LEB128 varints; strings and blobs are length-prefixed. Decoding is
// defensive: it never reads past the buffer and rejects malformed input —
// DTN radios deliver garbage more often than not.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/core/metadata.hpp"
#include "src/net/message.hpp"

namespace hdtn::net {

using Bytes = std::vector<std::uint8_t>;

/// Append-only encoder.
class Encoder {
 public:
  void writeVarint(std::uint64_t value);
  void writeBytes(std::span<const std::uint8_t> data);
  void writeString(std::string_view s);
  void writeDigest(const Sha1Digest& digest);

  [[nodiscard]] const Bytes& buffer() const { return buffer_; }
  [[nodiscard]] Bytes take() { return std::move(buffer_); }

 private:
  Bytes buffer_;
};

/// Why a decode failed. Every malformed input maps to exactly one typed
/// cause — decoding never invokes UB and never returns a partial message.
enum class DecodeError : std::uint8_t {
  kNone = 0,        ///< success
  kTruncated,       ///< input ended before the message did
  kBadVersion,      ///< version byte is not kCodecVersion
  kBadKind,         ///< kind tag unknown or not the expected message
  kOverflow,        ///< varint wider than 64 bits
  kLimitExceeded,   ///< length prefix above the caller's cap
  kTrailingBytes,   ///< well-formed message followed by garbage
  kBadValue,        ///< field decoded but out of its legal range
};

/// Stable lower-case name ("truncated", "bad-version", ...) for logs.
[[nodiscard]] const char* decodeErrorName(DecodeError error);

/// A decoded message or the typed reason it failed. Optional-compatible
/// (operator bool / * / -> / has_value) so it reads like the std::optional
/// it replaced, with `error()` for diagnostics.
template <typename T>
struct DecodeResult {
  std::optional<T> value;
  DecodeError error = DecodeError::kNone;

  [[nodiscard]] bool has_value() const { return value.has_value(); }
  explicit operator bool() const { return value.has_value(); }
  [[nodiscard]] T& operator*() { return *value; }
  [[nodiscard]] const T& operator*() const { return *value; }
  [[nodiscard]] T* operator->() { return &*value; }
  [[nodiscard]] const T* operator->() const { return &*value; }
  friend bool operator==(const DecodeResult& r, const T& expected) {
    return r.value == expected;
  }
};

/// Bounds-checked decoder; every read reports failure via std::optional and
/// records the typed cause (error() keeps the first failure).
class Decoder {
 public:
  explicit Decoder(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::optional<std::uint64_t> readVarint();
  [[nodiscard]] std::optional<std::string> readString(
      std::size_t maxLength = 1 << 20);
  [[nodiscard]] std::optional<Bytes> readBlob(
      std::size_t maxLength = 1 << 20);
  [[nodiscard]] std::optional<Sha1Digest> readDigest();

  [[nodiscard]] bool atEnd() const { return offset_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const {
    return data_.size() - offset_;
  }
  /// First failure seen by any read; kNone while all reads succeeded.
  [[nodiscard]] DecodeError error() const { return error_; }

 private:
  std::nullopt_t fail(DecodeError error) {
    if (error_ == DecodeError::kNone) error_ = error;
    return std::nullopt;
  }

  std::span<const std::uint8_t> data_;
  std::size_t offset_ = 0;
  DecodeError error_ = DecodeError::kNone;
};

/// Message kind tags on the wire.
enum class WireKind : std::uint8_t {
  kHello = 1,
  kMetadata = 2,
  kPiece = 3,
  kCodedPiece = 4,
};

/// Current codec version, first byte of every frame.
inline constexpr std::uint8_t kCodecVersion = 1;

// --- frame encoders -------------------------------------------------------

[[nodiscard]] Bytes encodeHello(const HelloMessage& hello);
[[nodiscard]] Bytes encodeMetadata(const core::Metadata& metadata);
/// `payload` is the piece content (may be empty for header-only tests).
[[nodiscard]] Bytes encodePiece(const PieceMessage& piece,
                                std::span<const std::uint8_t> payload);
/// `payload` is the combined content (may be empty for header-only tests).
/// The message's coefficient vector must match its generationSize.
[[nodiscard]] Bytes encodeCodedPiece(const CodedPieceMessage& frame,
                                     std::span<const std::uint8_t> payload);

// --- frame decoders -------------------------------------------------------
//
// Each decoder returns the message or the typed reason it was rejected;
// a failed result never carries a partially-populated message.

/// Peeks the kind of a frame without consuming it.
[[nodiscard]] DecodeResult<WireKind> peekKind(
    std::span<const std::uint8_t> frame);

[[nodiscard]] DecodeResult<HelloMessage> decodeHello(
    std::span<const std::uint8_t> frame);
[[nodiscard]] DecodeResult<core::Metadata> decodeMetadata(
    std::span<const std::uint8_t> frame);

struct DecodedPiece {
  PieceMessage header;
  Bytes payload;
};
[[nodiscard]] DecodeResult<DecodedPiece> decodePiece(
    std::span<const std::uint8_t> frame);

struct DecodedCodedPiece {
  CodedPieceMessage header;
  Bytes payload;
};
/// Rejects (kBadValue) a zero generation size, a generation above
/// kMaxGenerationSize, and a coefficient vector whose length does not
/// match the declared generation size.
[[nodiscard]] DecodeResult<DecodedCodedPiece> decodeCodedPiece(
    std::span<const std::uint8_t> frame);

/// Largest generation a coded frame may declare; caps the coefficient
/// allocation a hostile frame can demand.
inline constexpr std::uint32_t kMaxGenerationSize = 4096;

}  // namespace hdtn::net
