#include "src/net/codec.hpp"

namespace hdtn::net {
namespace {

constexpr std::uint32_t kInvalidId = 0xffffffffu;

bool writeHeader(Encoder& enc, WireKind kind) {
  enc.writeVarint(kCodecVersion);
  enc.writeVarint(static_cast<std::uint64_t>(kind));
  return true;
}

// Reads and validates the version + expected kind.
bool readHeader(Decoder& dec, WireKind expected) {
  const auto version = dec.readVarint();
  if (!version || *version != kCodecVersion) return false;
  const auto kind = dec.readVarint();
  return kind && *kind == static_cast<std::uint64_t>(expected);
}

}  // namespace

void Encoder::writeVarint(std::uint64_t value) {
  while (value >= 0x80) {
    buffer_.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  buffer_.push_back(static_cast<std::uint8_t>(value));
}

void Encoder::writeBytes(std::span<const std::uint8_t> data) {
  writeVarint(data.size());
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

void Encoder::writeString(std::string_view s) {
  writeBytes(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

void Encoder::writeDigest(const Sha1Digest& digest) {
  buffer_.insert(buffer_.end(), digest.bytes.begin(), digest.bytes.end());
}

std::optional<std::uint64_t> Decoder::readVarint() {
  std::uint64_t value = 0;
  int shift = 0;
  while (offset_ < data_.size()) {
    const std::uint8_t byte = data_[offset_++];
    if (shift >= 63 && (byte & 0x7f) > 1) return std::nullopt;  // overflow
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
    if (shift > 63) return std::nullopt;
  }
  return std::nullopt;  // truncated
}

std::optional<std::string> Decoder::readString(std::size_t maxLength) {
  const auto length = readVarint();
  if (!length || *length > maxLength || *length > remaining()) {
    return std::nullopt;
  }
  std::string out(reinterpret_cast<const char*>(data_.data() + offset_),
                  static_cast<std::size_t>(*length));
  offset_ += static_cast<std::size_t>(*length);
  return out;
}

std::optional<Bytes> Decoder::readBlob(std::size_t maxLength) {
  const auto length = readVarint();
  if (!length || *length > maxLength || *length > remaining()) {
    return std::nullopt;
  }
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(offset_),
            data_.begin() + static_cast<std::ptrdiff_t>(offset_) +
                static_cast<std::ptrdiff_t>(*length));
  offset_ += static_cast<std::size_t>(*length);
  return out;
}

std::optional<Sha1Digest> Decoder::readDigest() {
  if (remaining() < 20) return std::nullopt;
  Sha1Digest digest;
  std::copy(data_.begin() + static_cast<std::ptrdiff_t>(offset_),
            data_.begin() + static_cast<std::ptrdiff_t>(offset_) + 20,
            digest.bytes.begin());
  offset_ += 20;
  return digest;
}

Bytes encodeHello(const HelloMessage& hello) {
  Encoder enc;
  writeHeader(enc, WireKind::kHello);
  enc.writeVarint(hello.sender.value);
  enc.writeVarint(hello.heardNeighbors.size());
  for (NodeId n : hello.heardNeighbors) enc.writeVarint(n.value);
  enc.writeVarint(hello.queries.size());
  for (const auto& q : hello.queries) enc.writeString(q);
  enc.writeVarint(hello.wantedUris.size());
  for (const auto& u : hello.wantedUris) enc.writeString(u);
  return enc.take();
}

std::optional<WireKind> peekKind(std::span<const std::uint8_t> frame) {
  Decoder dec(frame);
  const auto version = dec.readVarint();
  if (!version || *version != kCodecVersion) return std::nullopt;
  const auto kind = dec.readVarint();
  if (!kind) return std::nullopt;
  switch (*kind) {
    case static_cast<std::uint64_t>(WireKind::kHello):
      return WireKind::kHello;
    case static_cast<std::uint64_t>(WireKind::kMetadata):
      return WireKind::kMetadata;
    case static_cast<std::uint64_t>(WireKind::kPiece):
      return WireKind::kPiece;
    default:
      return std::nullopt;
  }
}

std::optional<HelloMessage> decodeHello(std::span<const std::uint8_t> frame) {
  Decoder dec(frame);
  if (!readHeader(dec, WireKind::kHello)) return std::nullopt;
  HelloMessage hello;
  const auto sender = dec.readVarint();
  if (!sender || *sender > kInvalidId) return std::nullopt;
  hello.sender = NodeId(static_cast<std::uint32_t>(*sender));
  const auto neighborCount = dec.readVarint();
  if (!neighborCount || *neighborCount > dec.remaining()) {
    return std::nullopt;
  }
  for (std::uint64_t i = 0; i < *neighborCount; ++i) {
    const auto n = dec.readVarint();
    if (!n || *n > kInvalidId) return std::nullopt;
    hello.heardNeighbors.emplace_back(static_cast<std::uint32_t>(*n));
  }
  const auto queryCount = dec.readVarint();
  if (!queryCount || *queryCount > dec.remaining()) return std::nullopt;
  for (std::uint64_t i = 0; i < *queryCount; ++i) {
    auto q = dec.readString();
    if (!q) return std::nullopt;
    hello.queries.push_back(std::move(*q));
  }
  const auto uriCount = dec.readVarint();
  if (!uriCount || *uriCount > dec.remaining()) return std::nullopt;
  for (std::uint64_t i = 0; i < *uriCount; ++i) {
    auto u = dec.readString();
    if (!u) return std::nullopt;
    hello.wantedUris.push_back(std::move(*u));
  }
  if (!dec.atEnd()) return std::nullopt;  // trailing garbage
  return hello;
}

Bytes encodeMetadata(const core::Metadata& metadata) {
  Encoder enc;
  writeHeader(enc, WireKind::kMetadata);
  enc.writeVarint(metadata.file.value);
  enc.writeString(metadata.name);
  enc.writeString(metadata.publisher);
  enc.writeString(metadata.description);
  enc.writeString(metadata.uri);
  enc.writeVarint(metadata.sizeBytes);
  enc.writeVarint(metadata.pieceSizeBytes);
  enc.writeVarint(metadata.pieceChecksums.size());
  for (const auto& digest : metadata.pieceChecksums) {
    enc.writeDigest(digest);
  }
  enc.writeDigest(metadata.authTag);
  // Popularity with fixed 1e-6 resolution; times as varints.
  enc.writeVarint(
      static_cast<std::uint64_t>(metadata.popularity * 1'000'000.0 + 0.5));
  enc.writeVarint(static_cast<std::uint64_t>(metadata.publishedAt));
  enc.writeVarint(static_cast<std::uint64_t>(metadata.ttl));
  return enc.take();
}

std::optional<core::Metadata> decodeMetadata(
    std::span<const std::uint8_t> frame) {
  Decoder dec(frame);
  if (!readHeader(dec, WireKind::kMetadata)) return std::nullopt;
  core::Metadata md;
  const auto file = dec.readVarint();
  if (!file || *file > kInvalidId) return std::nullopt;
  md.file = FileId(static_cast<std::uint32_t>(*file));
  auto name = dec.readString();
  auto publisher = dec.readString();
  auto description = dec.readString();
  auto uri = dec.readString();
  if (!name || !publisher || !description || !uri) return std::nullopt;
  md.name = std::move(*name);
  md.publisher = std::move(*publisher);
  md.description = std::move(*description);
  md.uri = std::move(*uri);
  const auto sizeBytes = dec.readVarint();
  const auto pieceSize = dec.readVarint();
  if (!sizeBytes || !pieceSize || *pieceSize > 0xffffffffull) {
    return std::nullopt;
  }
  md.sizeBytes = *sizeBytes;
  md.pieceSizeBytes = static_cast<std::uint32_t>(*pieceSize);
  const auto checksumCount = dec.readVarint();
  if (!checksumCount || *checksumCount * 20 > dec.remaining()) {
    return std::nullopt;
  }
  for (std::uint64_t i = 0; i < *checksumCount; ++i) {
    const auto digest = dec.readDigest();
    if (!digest) return std::nullopt;
    md.pieceChecksums.push_back(*digest);
  }
  const auto authTag = dec.readDigest();
  if (!authTag) return std::nullopt;
  md.authTag = *authTag;
  const auto popularity = dec.readVarint();
  const auto publishedAt = dec.readVarint();
  const auto ttl = dec.readVarint();
  if (!popularity || !publishedAt || !ttl || *popularity > 1'000'000) {
    return std::nullopt;
  }
  md.popularity = static_cast<double>(*popularity) / 1'000'000.0;
  md.publishedAt = static_cast<SimTime>(*publishedAt);
  md.ttl = static_cast<Duration>(*ttl);
  if (!dec.atEnd()) return std::nullopt;
  md.rebuildKeywords();  // derived field, not on the wire
  return md;
}

Bytes encodePiece(const PieceMessage& piece,
                  std::span<const std::uint8_t> payload) {
  Encoder enc;
  writeHeader(enc, WireKind::kPiece);
  enc.writeVarint(piece.sender.value);
  enc.writeVarint(piece.file.value);
  enc.writeVarint(piece.pieceIndex);
  enc.writeBytes(payload);
  return enc.take();
}

std::optional<DecodedPiece> decodePiece(
    std::span<const std::uint8_t> frame) {
  Decoder dec(frame);
  if (!readHeader(dec, WireKind::kPiece)) return std::nullopt;
  DecodedPiece out;
  const auto sender = dec.readVarint();
  const auto file = dec.readVarint();
  const auto index = dec.readVarint();
  if (!sender || !file || !index || *sender > kInvalidId ||
      *file > kInvalidId || *index > 0xffffffffull) {
    return std::nullopt;
  }
  out.header.sender = NodeId(static_cast<std::uint32_t>(*sender));
  out.header.file = FileId(static_cast<std::uint32_t>(*file));
  out.header.pieceIndex = static_cast<std::uint32_t>(*index);
  auto payload = dec.readBlob();
  if (!payload || !dec.atEnd()) return std::nullopt;
  out.payload = std::move(*payload);
  return out;
}

}  // namespace hdtn::net
