#include "src/net/codec.hpp"

namespace hdtn::net {
namespace {

constexpr std::uint32_t kInvalidId = 0xffffffffu;

bool writeHeader(Encoder& enc, WireKind kind) {
  enc.writeVarint(kCodecVersion);
  enc.writeVarint(static_cast<std::uint64_t>(kind));
  return true;
}

// Reads and validates the version + expected kind; kNone on success.
DecodeError readHeader(Decoder& dec, WireKind expected) {
  const auto version = dec.readVarint();
  if (!version) return dec.error();
  if (*version != kCodecVersion) return DecodeError::kBadVersion;
  const auto kind = dec.readVarint();
  if (!kind) return dec.error();
  if (*kind != static_cast<std::uint64_t>(expected)) {
    return DecodeError::kBadKind;
  }
  return DecodeError::kNone;
}

}  // namespace

const char* decodeErrorName(DecodeError error) {
  switch (error) {
    case DecodeError::kNone: return "ok";
    case DecodeError::kTruncated: return "truncated";
    case DecodeError::kBadVersion: return "bad-version";
    case DecodeError::kBadKind: return "bad-kind";
    case DecodeError::kOverflow: return "overflow";
    case DecodeError::kLimitExceeded: return "limit-exceeded";
    case DecodeError::kTrailingBytes: return "trailing-bytes";
    case DecodeError::kBadValue: return "bad-value";
  }
  return "unknown";
}

void Encoder::writeVarint(std::uint64_t value) {
  while (value >= 0x80) {
    buffer_.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  buffer_.push_back(static_cast<std::uint8_t>(value));
}

void Encoder::writeBytes(std::span<const std::uint8_t> data) {
  writeVarint(data.size());
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

void Encoder::writeString(std::string_view s) {
  writeBytes(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

void Encoder::writeDigest(const Sha1Digest& digest) {
  buffer_.insert(buffer_.end(), digest.bytes.begin(), digest.bytes.end());
}

std::optional<std::uint64_t> Decoder::readVarint() {
  std::uint64_t value = 0;
  int shift = 0;
  while (offset_ < data_.size()) {
    const std::uint8_t byte = data_[offset_++];
    if (shift >= 63 && (byte & 0x7f) > 1) {
      return fail(DecodeError::kOverflow);
    }
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
    if (shift > 63) return fail(DecodeError::kOverflow);
  }
  return fail(DecodeError::kTruncated);
}

std::optional<std::string> Decoder::readString(std::size_t maxLength) {
  const auto length = readVarint();
  if (!length) return std::nullopt;
  if (*length > maxLength) return fail(DecodeError::kLimitExceeded);
  if (*length > remaining()) return fail(DecodeError::kTruncated);
  std::string out(reinterpret_cast<const char*>(data_.data() + offset_),
                  static_cast<std::size_t>(*length));
  offset_ += static_cast<std::size_t>(*length);
  return out;
}

std::optional<Bytes> Decoder::readBlob(std::size_t maxLength) {
  const auto length = readVarint();
  if (!length) return std::nullopt;
  if (*length > maxLength) return fail(DecodeError::kLimitExceeded);
  if (*length > remaining()) return fail(DecodeError::kTruncated);
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(offset_),
            data_.begin() + static_cast<std::ptrdiff_t>(offset_) +
                static_cast<std::ptrdiff_t>(*length));
  offset_ += static_cast<std::size_t>(*length);
  return out;
}

std::optional<Sha1Digest> Decoder::readDigest() {
  if (remaining() < 20) return fail(DecodeError::kTruncated);
  Sha1Digest digest;
  std::copy(data_.begin() + static_cast<std::ptrdiff_t>(offset_),
            data_.begin() + static_cast<std::ptrdiff_t>(offset_) + 20,
            digest.bytes.begin());
  offset_ += 20;
  return digest;
}

Bytes encodeHello(const HelloMessage& hello) {
  Encoder enc;
  writeHeader(enc, WireKind::kHello);
  enc.writeVarint(hello.sender.value);
  enc.writeVarint(hello.heardNeighbors.size());
  for (NodeId n : hello.heardNeighbors) enc.writeVarint(n.value);
  enc.writeVarint(hello.queries.size());
  for (const auto& q : hello.queries) enc.writeString(q);
  enc.writeVarint(hello.wantedUris.size());
  for (const auto& u : hello.wantedUris) enc.writeString(u);
  return enc.take();
}

DecodeResult<WireKind> peekKind(std::span<const std::uint8_t> frame) {
  Decoder dec(frame);
  const auto version = dec.readVarint();
  if (!version) return {std::nullopt, dec.error()};
  if (*version != kCodecVersion) {
    return {std::nullopt, DecodeError::kBadVersion};
  }
  const auto kind = dec.readVarint();
  if (!kind) return {std::nullopt, dec.error()};
  switch (*kind) {
    case static_cast<std::uint64_t>(WireKind::kHello):
      return {WireKind::kHello};
    case static_cast<std::uint64_t>(WireKind::kMetadata):
      return {WireKind::kMetadata};
    case static_cast<std::uint64_t>(WireKind::kPiece):
      return {WireKind::kPiece};
    case static_cast<std::uint64_t>(WireKind::kCodedPiece):
      return {WireKind::kCodedPiece};
    default:
      return {std::nullopt, DecodeError::kBadKind};
  }
}

DecodeResult<HelloMessage> decodeHello(std::span<const std::uint8_t> frame) {
  Decoder dec(frame);
  if (const DecodeError err = readHeader(dec, WireKind::kHello);
      err != DecodeError::kNone) {
    return {std::nullopt, err};
  }
  HelloMessage hello;
  const auto sender = dec.readVarint();
  if (!sender) return {std::nullopt, dec.error()};
  if (*sender > kInvalidId) return {std::nullopt, DecodeError::kBadValue};
  hello.sender = NodeId(static_cast<std::uint32_t>(*sender));
  const auto neighborCount = dec.readVarint();
  if (!neighborCount) return {std::nullopt, dec.error()};
  // Every list element costs at least one byte, so a count above the bytes
  // left proves truncation without allocating for the claimed size.
  if (*neighborCount > dec.remaining()) {
    return {std::nullopt, DecodeError::kTruncated};
  }
  for (std::uint64_t i = 0; i < *neighborCount; ++i) {
    const auto n = dec.readVarint();
    if (!n) return {std::nullopt, dec.error()};
    if (*n > kInvalidId) return {std::nullopt, DecodeError::kBadValue};
    hello.heardNeighbors.emplace_back(static_cast<std::uint32_t>(*n));
  }
  const auto queryCount = dec.readVarint();
  if (!queryCount) return {std::nullopt, dec.error()};
  if (*queryCount > dec.remaining()) {
    return {std::nullopt, DecodeError::kTruncated};
  }
  for (std::uint64_t i = 0; i < *queryCount; ++i) {
    auto q = dec.readString();
    if (!q) return {std::nullopt, dec.error()};
    hello.queries.push_back(std::move(*q));
  }
  const auto uriCount = dec.readVarint();
  if (!uriCount) return {std::nullopt, dec.error()};
  if (*uriCount > dec.remaining()) {
    return {std::nullopt, DecodeError::kTruncated};
  }
  for (std::uint64_t i = 0; i < *uriCount; ++i) {
    auto u = dec.readString();
    if (!u) return {std::nullopt, dec.error()};
    hello.wantedUris.push_back(std::move(*u));
  }
  if (!dec.atEnd()) return {std::nullopt, DecodeError::kTrailingBytes};
  return {std::move(hello)};
}

Bytes encodeMetadata(const core::Metadata& metadata) {
  Encoder enc;
  writeHeader(enc, WireKind::kMetadata);
  enc.writeVarint(metadata.file.value);
  enc.writeString(metadata.name);
  enc.writeString(metadata.publisher);
  enc.writeString(metadata.description);
  enc.writeString(metadata.uri);
  enc.writeVarint(metadata.sizeBytes);
  enc.writeVarint(metadata.pieceSizeBytes);
  enc.writeVarint(metadata.pieceChecksums.size());
  for (const auto& digest : metadata.pieceChecksums) {
    enc.writeDigest(digest);
  }
  enc.writeDigest(metadata.authTag);
  // Popularity with fixed 1e-6 resolution; times as varints.
  enc.writeVarint(
      static_cast<std::uint64_t>(metadata.popularity * 1'000'000.0 + 0.5));
  enc.writeVarint(static_cast<std::uint64_t>(metadata.publishedAt));
  enc.writeVarint(static_cast<std::uint64_t>(metadata.ttl));
  return enc.take();
}

DecodeResult<core::Metadata> decodeMetadata(
    std::span<const std::uint8_t> frame) {
  Decoder dec(frame);
  if (const DecodeError err = readHeader(dec, WireKind::kMetadata);
      err != DecodeError::kNone) {
    return {std::nullopt, err};
  }
  core::Metadata md;
  const auto file = dec.readVarint();
  if (!file) return {std::nullopt, dec.error()};
  if (*file > kInvalidId) return {std::nullopt, DecodeError::kBadValue};
  md.file = FileId(static_cast<std::uint32_t>(*file));
  auto name = dec.readString();
  auto publisher = dec.readString();
  auto description = dec.readString();
  auto uri = dec.readString();
  if (!name || !publisher || !description || !uri) {
    return {std::nullopt, dec.error()};
  }
  md.name = std::move(*name);
  md.publisher = std::move(*publisher);
  md.description = std::move(*description);
  md.uri = std::move(*uri);
  const auto sizeBytes = dec.readVarint();
  const auto pieceSize = dec.readVarint();
  if (!sizeBytes || !pieceSize) return {std::nullopt, dec.error()};
  if (*pieceSize > 0xffffffffull) {
    return {std::nullopt, DecodeError::kBadValue};
  }
  md.sizeBytes = *sizeBytes;
  md.pieceSizeBytes = static_cast<std::uint32_t>(*pieceSize);
  const auto checksumCount = dec.readVarint();
  if (!checksumCount) return {std::nullopt, dec.error()};
  // Digests are fixed 20-byte records; cap the count by the bytes left
  // before reserving anything (the *20 cannot overflow: count <= 2^64/20
  // is implied by the remaining() bound on a real buffer).
  if (*checksumCount > dec.remaining() / 20) {
    return {std::nullopt, DecodeError::kTruncated};
  }
  for (std::uint64_t i = 0; i < *checksumCount; ++i) {
    const auto digest = dec.readDigest();
    if (!digest) return {std::nullopt, dec.error()};
    md.pieceChecksums.push_back(*digest);
  }
  const auto authTag = dec.readDigest();
  if (!authTag) return {std::nullopt, dec.error()};
  md.authTag = *authTag;
  const auto popularity = dec.readVarint();
  const auto publishedAt = dec.readVarint();
  const auto ttl = dec.readVarint();
  if (!popularity || !publishedAt || !ttl) {
    return {std::nullopt, dec.error()};
  }
  if (*popularity > 1'000'000) return {std::nullopt, DecodeError::kBadValue};
  md.popularity = static_cast<double>(*popularity) / 1'000'000.0;
  md.publishedAt = static_cast<SimTime>(*publishedAt);
  md.ttl = static_cast<Duration>(*ttl);
  if (!dec.atEnd()) return {std::nullopt, DecodeError::kTrailingBytes};
  md.rebuildKeywords();  // derived field, not on the wire
  return {std::move(md)};
}

Bytes encodePiece(const PieceMessage& piece,
                  std::span<const std::uint8_t> payload) {
  Encoder enc;
  writeHeader(enc, WireKind::kPiece);
  enc.writeVarint(piece.sender.value);
  enc.writeVarint(piece.file.value);
  enc.writeVarint(piece.pieceIndex);
  enc.writeBytes(payload);
  return enc.take();
}

DecodeResult<DecodedPiece> decodePiece(
    std::span<const std::uint8_t> frame) {
  Decoder dec(frame);
  if (const DecodeError err = readHeader(dec, WireKind::kPiece);
      err != DecodeError::kNone) {
    return {std::nullopt, err};
  }
  DecodedPiece out;
  const auto sender = dec.readVarint();
  const auto file = dec.readVarint();
  const auto index = dec.readVarint();
  if (!sender || !file || !index) return {std::nullopt, dec.error()};
  if (*sender > kInvalidId || *file > kInvalidId ||
      *index > 0xffffffffull) {
    return {std::nullopt, DecodeError::kBadValue};
  }
  out.header.sender = NodeId(static_cast<std::uint32_t>(*sender));
  out.header.file = FileId(static_cast<std::uint32_t>(*file));
  out.header.pieceIndex = static_cast<std::uint32_t>(*index);
  auto payload = dec.readBlob();
  if (!payload) return {std::nullopt, dec.error()};
  if (!dec.atEnd()) return {std::nullopt, DecodeError::kTrailingBytes};
  out.payload = std::move(*payload);
  return {std::move(out)};
}

Bytes encodeCodedPiece(const CodedPieceMessage& frame,
                       std::span<const std::uint8_t> payload) {
  Encoder enc;
  writeHeader(enc, WireKind::kCodedPiece);
  enc.writeVarint(frame.sender.value);
  enc.writeVarint(frame.file.value);
  enc.writeVarint(frame.generationSize);
  enc.writeVarint(frame.seed);
  enc.writeBytes(frame.coefficients);
  enc.writeBytes(payload);
  return enc.take();
}

DecodeResult<DecodedCodedPiece> decodeCodedPiece(
    std::span<const std::uint8_t> frame) {
  Decoder dec(frame);
  if (const DecodeError err = readHeader(dec, WireKind::kCodedPiece);
      err != DecodeError::kNone) {
    return {std::nullopt, err};
  }
  DecodedCodedPiece out;
  const auto sender = dec.readVarint();
  const auto file = dec.readVarint();
  const auto generation = dec.readVarint();
  const auto seed = dec.readVarint();
  if (!sender || !file || !generation || !seed) {
    return {std::nullopt, dec.error()};
  }
  if (*sender > kInvalidId || *file > kInvalidId) {
    return {std::nullopt, DecodeError::kBadValue};
  }
  if (*generation == 0 || *generation > kMaxGenerationSize) {
    return {std::nullopt, DecodeError::kBadValue};
  }
  out.header.sender = NodeId(static_cast<std::uint32_t>(*sender));
  out.header.file = FileId(static_cast<std::uint32_t>(*file));
  out.header.generationSize = static_cast<std::uint32_t>(*generation);
  out.header.seed = *seed;
  auto coefficients = dec.readBlob();
  if (!coefficients) return {std::nullopt, dec.error()};
  if (coefficients->size() != out.header.generationSize) {
    return {std::nullopt, DecodeError::kBadValue};
  }
  // An all-zero coefficient vector can never raise a decoder's rank; no
  // honest encoder emits one (sparseCoefficients guarantees a nonzero
  // entry), so reject the degenerate frame at the wire.
  bool anyNonZero = false;
  for (std::uint8_t c : *coefficients) {
    if (c != 0) {
      anyNonZero = true;
      break;
    }
  }
  if (!anyNonZero) return {std::nullopt, DecodeError::kBadValue};
  out.header.coefficients = std::move(*coefficients);
  auto payload = dec.readBlob();
  if (!payload) return {std::nullopt, dec.error()};
  if (!dec.atEnd()) return {std::nullopt, DecodeError::kTrailingBytes};
  out.payload = std::move(*payload);
  return {std::move(out)};
}

}  // namespace hdtn::net
