// Hello-protocol state machine.
//
// Tracks, per node, which neighbors were heard within the 5-second window
// and the latest hello payload from each. The download layer reads the
// neighbor sets to build the connectivity graph over which broadcast cliques
// are computed (paper Sections III-B and V).
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "src/net/message.hpp"
#include "src/util/types.hpp"

namespace hdtn::net {

class HelloState {
 public:
  explicit HelloState(NodeId self) : self_(self) {}

  [[nodiscard]] NodeId self() const { return self_; }

  /// Records a received hello at time `now`.
  void onHello(SimTime now, const HelloMessage& hello);

  /// Drops neighbors not heard within kHelloNeighborWindow of `now`.
  void expire(SimTime now);

  /// Neighbors heard within the window as of `now`, sorted ascending.
  [[nodiscard]] std::vector<NodeId> activeNeighbors(SimTime now) const;

  /// Latest hello payload from a neighbor, if still within the window.
  [[nodiscard]] std::optional<HelloMessage> latestFrom(SimTime now,
                                                       NodeId peer) const;

  /// Builds this node's outgoing hello.
  [[nodiscard]] HelloMessage makeHello(SimTime now,
                                       std::vector<std::string> queries,
                                       std::vector<Uri> wantedUris) const;

  void clear() { heard_.clear(); }

 private:
  struct HeardEntry {
    SimTime lastHeard = 0;
    HelloMessage lastHello;
  };

  NodeId self_;
  std::unordered_map<NodeId, HeardEntry> heard_;
};

}  // namespace hdtn::net
