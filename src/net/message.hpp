// Wire message types exchanged between hybrid-DTN nodes.
//
// Paper Section III-B: "Messages exchanged among the nodes include: (a)
// hello messages, (b) metadata, and (c) file pieces." Hello messages carry
// the node id, recently heard neighbor ids, the node's query strings, and
// the URIs of files it is downloading.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/types.hpp"

namespace hdtn::net {

/// Periodic presence beacon (at least every second per the paper; the
/// simulation exchanges them at contact start).
struct HelloMessage {
  NodeId sender;
  /// Nodes from which the sender received hellos in the past 5 seconds.
  std::vector<NodeId> heardNeighbors;
  /// The sender's own active query strings.
  std::vector<std::string> queries;
  /// URIs of the files the sender is currently trying to download.
  std::vector<Uri> wantedUris;
};

/// A metadata record in flight (payload identified by file id; the engine
/// resolves ids against the catalog).
struct MetadataMessage {
  NodeId sender;
  FileId file;
};

/// One file piece in flight.
struct PieceMessage {
  NodeId sender;
  FileId file;
  std::uint32_t pieceIndex = 0;
};

/// One network-coded frame in flight (coded download mode, docs/CODING.md):
/// a random linear combination of the file's generation. The coefficient
/// vector travels explicitly — recoded frames mix the sender's row space,
/// so the receiver cannot re-derive them from the seed alone. The seed is
/// kept for diagnostics (it names the combination in event logs).
struct CodedPieceMessage {
  NodeId sender;
  FileId file;
  /// Pieces in the generation == length of the coefficient vector.
  std::uint32_t generationSize = 0;
  /// The Rng draw that produced (or recoded) the combination.
  std::uint64_t seed = 0;
  /// GF(2^8) coefficients, one per piece of the generation.
  std::vector<std::uint8_t> coefficients;
};

/// How long a heard hello keeps a neighbor in the "recently heard" set.
inline constexpr Duration kHelloNeighborWindow = 5;  // seconds

}  // namespace hdtn::net
