// Wire message types exchanged between hybrid-DTN nodes.
//
// Paper Section III-B: "Messages exchanged among the nodes include: (a)
// hello messages, (b) metadata, and (c) file pieces." Hello messages carry
// the node id, recently heard neighbor ids, the node's query strings, and
// the URIs of files it is downloading.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/types.hpp"

namespace hdtn::net {

/// Periodic presence beacon (at least every second per the paper; the
/// simulation exchanges them at contact start).
struct HelloMessage {
  NodeId sender;
  /// Nodes from which the sender received hellos in the past 5 seconds.
  std::vector<NodeId> heardNeighbors;
  /// The sender's own active query strings.
  std::vector<std::string> queries;
  /// URIs of the files the sender is currently trying to download.
  std::vector<Uri> wantedUris;
};

/// A metadata record in flight (payload identified by file id; the engine
/// resolves ids against the catalog).
struct MetadataMessage {
  NodeId sender;
  FileId file;
};

/// One file piece in flight.
struct PieceMessage {
  NodeId sender;
  FileId file;
  std::uint32_t pieceIndex = 0;
};

/// How long a heard hello keeps a neighbor in the "recently heard" set.
inline constexpr Duration kHelloNeighborWindow = 5;  // seconds

}  // namespace hdtn::net
