#include "src/net/hello.hpp"

#include <algorithm>

namespace hdtn::net {

void HelloState::onHello(SimTime now, const HelloMessage& hello) {
  if (hello.sender == self_) return;
  auto& entry = heard_[hello.sender];
  entry.lastHeard = now;
  entry.lastHello = hello;
}

void HelloState::expire(SimTime now) {
  std::erase_if(heard_, [now](const auto& kv) {
    return now - kv.second.lastHeard > kHelloNeighborWindow;
  });
}

std::vector<NodeId> HelloState::activeNeighbors(SimTime now) const {
  std::vector<NodeId> out;
  for (const auto& [peer, entry] : heard_) {
    if (now - entry.lastHeard <= kHelloNeighborWindow) out.push_back(peer);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<HelloMessage> HelloState::latestFrom(SimTime now,
                                                   NodeId peer) const {
  auto it = heard_.find(peer);
  if (it == heard_.end()) return std::nullopt;
  if (now - it->second.lastHeard > kHelloNeighborWindow) return std::nullopt;
  return it->second.lastHello;
}

HelloMessage HelloState::makeHello(SimTime now,
                                   std::vector<std::string> queries,
                                   std::vector<Uri> wantedUris) const {
  HelloMessage hello;
  hello.sender = self_;
  hello.heardNeighbors = activeNeighbors(now);
  hello.queries = std::move(queries);
  hello.wantedUris = std::move(wantedUris);
  return hello;
}

}  // namespace hdtn::net
