// Cyclic MobiSpace trace generator.
//
// The authors' companion work ("Routing in a Cyclic MobiSpace", MobiHoc'08,
// cited as [21]) models DTNs whose contact patterns repeat with a common
// period T: buses run the same schedule every day, students attend the same
// classes every week. A cyclic trace is described by *probabilistic contact
// slots* — (members, offset within the period, duration, probability) —
// and each cycle independently realizes each slot with its probability.
// Both of this repository's schedule-driven generators are special cases;
// this one lets tests and benches express arbitrary periodic structure.
#pragma once

#include <cstdint>
#include <vector>

#include "src/trace/contact_trace.hpp"
#include "src/util/random.hpp"

namespace hdtn::trace {

/// One probabilistic contact opportunity per cycle.
struct CyclicSlot {
  std::vector<NodeId> members;  ///< >= 2 distinct nodes
  SimTime offset = 0;           ///< start within the period
  Duration duration = 0;
  double probability = 1.0;  ///< chance the slot materializes each cycle
};

struct CyclicParams {
  Duration period = kDay;
  int cycles = 14;
  std::vector<CyclicSlot> slots;
  /// Uniform jitter applied to each realized slot's start, in seconds
  /// (clamped so the contact stays within its cycle).
  Duration startJitter = 0;
  std::uint64_t seed = 1;
};

/// Generates the trace: slot s of cycle k starts at k*period + offset
/// (+ jitter) when its probability coin lands heads.
[[nodiscard]] ContactTrace generateCyclic(const CyclicParams& params);

/// Builds `count` random slots over `nodes` nodes: clique sizes in
/// [2, maxCliqueSize], offsets uniform in the period, durations uniform in
/// [minDuration, maxDuration], probabilities uniform in [minProbability, 1].
[[nodiscard]] std::vector<CyclicSlot> randomCyclicSlots(
    std::size_t nodes, std::size_t count, Duration period,
    std::size_t maxCliqueSize, Duration minDuration, Duration maxDuration,
    double minProbability, Rng& rng);

}  // namespace hdtn::trace
