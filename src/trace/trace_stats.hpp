// Contact-trace statistics.
//
// The engine needs the *frequent contact* relation (paper Section VI-A):
// nodes whose queries a peer stores and proxies in MBT. The paper defines it
// per trace family: DieselNet — pairs with contacts at least every 3 days;
// NUS — pairs with contacts at least once per day. We generalize to "a pair
// is frequent if in every window of `period` seconds spanned by the trace
// the pair has at least one contact".
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "src/trace/contact_trace.hpp"
#include "src/util/stats.hpp"
#include "src/util/types.hpp"

namespace hdtn::trace {

/// Key for a node pair with a < b.
using NodePair = std::pair<NodeId, NodeId>;

[[nodiscard]] NodePair makePair(NodeId a, NodeId b);

/// Aggregate descriptive statistics of a trace.
struct TraceSummary {
  std::size_t nodeCount = 0;
  std::size_t contactCount = 0;
  SimTime span = 0;                  ///< end of last contact
  double meanContactDuration = 0.0;  ///< seconds
  double meanCliqueSize = 0.0;
  double meanContactsPerNodePerDay = 0.0;
  double meanInterContactTime = 0.0;  ///< seconds, over pairs that meet twice
};

[[nodiscard]] TraceSummary summarize(const ContactTrace& trace);

/// Per-pair contact counts (pairwise decomposition of clique contacts).
[[nodiscard]] std::map<NodePair, std::size_t> pairContactCounts(
    const ContactTrace& trace);

/// Inter-contact gap samples over all pairs (start-to-start deltas).
[[nodiscard]] SampleSet interContactTimes(const ContactTrace& trace);

/// The frequent-contact relation: pair (a, b) is frequent iff the pair has
/// at least one contact in every `period`-second window of the trace span
/// (windows are aligned to trace start; a final partial window shorter than
/// half the period is ignored).
[[nodiscard]] std::vector<NodePair> frequentContactPairs(
    const ContactTrace& trace, Duration period);

/// Frequent contacts of each node, as adjacency lists indexed by node id.
[[nodiscard]] std::vector<std::vector<NodeId>> frequentContactLists(
    const ContactTrace& trace, Duration period);

/// The paper's per-trace frequent-contact periods.
inline constexpr Duration kDieselNetFrequentPeriod = 3 * kDay;
inline constexpr Duration kNusFrequentPeriod = 1 * kDay;

}  // namespace hdtn::trace
