#include "src/trace/mobility.hpp"

#include <cassert>
#include <cmath>
#include <map>
#include <utility>

#include "src/trace/trace_stats.hpp"

namespace hdtn::trace {

double distance(const Position& a, const Position& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

RandomWaypointWalker::RandomWaypointWalker(const RandomWaypointParams& params,
                                           Rng rng)
    : params_(params), rng_(rng) {
  position_.x = rng_.uniform(0.0, params_.fieldWidth);
  position_.y = rng_.uniform(0.0, params_.fieldHeight);
  pickWaypoint();
}

void RandomWaypointWalker::pickWaypoint() {
  waypoint_.x = rng_.uniform(0.0, params_.fieldWidth);
  waypoint_.y = rng_.uniform(0.0, params_.fieldHeight);
  speed_ = rng_.uniform(params_.minSpeed, params_.maxSpeed);
  pauseLeft_ = 0;
}

void RandomWaypointWalker::advance(Duration dt) {
  double remaining = static_cast<double>(dt);
  while (remaining > 0.0) {
    if (pauseLeft_ > 0) {
      const double pause =
          std::min(remaining, static_cast<double>(pauseLeft_));
      pauseLeft_ -= static_cast<Duration>(pause);
      remaining -= pause;
      continue;
    }
    const double toGo = distance(position_, waypoint_);
    const double reachTime = speed_ > 0.0 ? toGo / speed_ : 0.0;
    if (reachTime <= remaining) {
      position_ = waypoint_;
      remaining -= reachTime;
      pauseLeft_ = params_.maxPause > 0
                       ? rng_.uniformInt(0, params_.maxPause)
                       : 0;
      pickWaypoint();
    } else {
      const double frac = remaining * speed_ / toGo;
      position_.x += (waypoint_.x - position_.x) * frac;
      position_.y += (waypoint_.y - position_.y) * frac;
      remaining = 0.0;
    }
  }
}

ContactTrace generateRandomWaypoint(const RandomWaypointParams& params) {
  assert(params.nodes >= 2);
  assert(params.tick > 0);
  assert(params.radioRange > 0.0);
  assert(params.maxSpeed >= params.minSpeed && params.minSpeed >= 0.0);

  ContactTrace out("rwp", static_cast<std::size_t>(params.nodes));
  Rng master(params.seed);
  std::vector<RandomWaypointWalker> walkers;
  walkers.reserve(static_cast<std::size_t>(params.nodes));
  for (int i = 0; i < params.nodes; ++i) {
    walkers.emplace_back(params, master.fork(static_cast<std::uint64_t>(i)));
  }

  // Open contact intervals per pair: pair -> start time.
  std::map<NodePair, SimTime> open;
  std::vector<Position> positions(walkers.size());

  // Grid bucketing keeps the per-tick pair scan near-linear.
  const double cell = params.radioRange;
  for (SimTime t = 0; t <= params.duration; t += params.tick) {
    for (std::size_t i = 0; i < walkers.size(); ++i) {
      positions[i] = walkers[i].position();
    }
    std::map<std::pair<int, int>, std::vector<std::size_t>> grid;
    for (std::size_t i = 0; i < positions.size(); ++i) {
      grid[{static_cast<int>(positions[i].x / cell),
            static_cast<int>(positions[i].y / cell)}]
          .push_back(i);
    }
    std::map<NodePair, bool> near;
    for (const auto& [cellKey, bucket] : grid) {
      for (int dx = -1; dx <= 1; ++dx) {
        for (int dy = -1; dy <= 1; ++dy) {
          const auto neighborIt =
              grid.find({cellKey.first + dx, cellKey.second + dy});
          if (neighborIt == grid.end()) continue;
          for (std::size_t i : bucket) {
            for (std::size_t j : neighborIt->second) {
              if (j <= i) continue;
              if (distance(positions[i], positions[j]) <=
                  params.radioRange) {
                near[makePair(NodeId(static_cast<std::uint32_t>(i)),
                              NodeId(static_cast<std::uint32_t>(j)))] = true;
              }
            }
          }
        }
      }
    }
    // Close intervals that ended, open ones that began.
    for (auto it = open.begin(); it != open.end();) {
      if (near.contains(it->first)) {
        ++it;
        continue;
      }
      Contact c;
      c.start = it->second;
      c.end = t;
      c.members = {it->first.first, it->first.second};
      out.addContact(std::move(c));
      it = open.erase(it);
    }
    for (const auto& [pair, _] : near) {
      open.try_emplace(pair, t);
    }
    for (auto& walker : walkers) walker.advance(params.tick);
  }
  // Close everything still open at the end of the simulation.
  for (const auto& [pair, start] : open) {
    Contact c;
    c.start = start;
    c.end = params.duration + params.tick;
    c.members = {pair.first, pair.second};
    out.addContact(std::move(c));
  }
  out.sortByStart();
  return out;
}

}  // namespace hdtn::trace
