// City-scale mixed-mobility trace generator (streaming).
//
// The workload that makes the scaling story real: a metropolitan population
// (10^5–10^6 nodes) split into districts, each mixing the two mobility
// regimes the paper evaluates plus a pedestrian background:
//   * campus cliques — NUS-style class sessions: fixed cliques of district
//     residents meet at on-the-hour slots, every attendee hears every other;
//   * transit encounters — DieselNet-style pairwise Poisson meetings over
//     the district's population (bus/metro co-rides);
//   * pedestrian encounters — a second, slower pairwise Poisson process
//     approximating random-waypoint walkers (RWP inter-meeting times are
//     near-exponential at these densities; see trace/mobility.hpp for the
//     explicit walker used at small scale).
//
// Contacts never span districts, so the district labels double as the
// sharded engine's partition hint: each district is an independent component
// and the union-find pre-pass is skipped.
//
// Streaming: contacts are produced one operating-hour window at a time
// (every district's processes restricted to the window — exact for Poisson
// processes, which are memoryless), sorted within the window, and emitted in
// global (start, end, members) order. Peak memory is one window of contacts,
// not the day. The sequence is a pure function of the parameters: reset()
// replays it exactly, and materializing it equals sorting it (tested).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/trace/contact_trace.hpp"
#include "src/trace/streaming.hpp"
#include "src/util/random.hpp"
#include "src/util/types.hpp"

namespace hdtn::trace {

struct CityParams {
  /// Total population; ids [0, nodes) split into near-equal contiguous
  /// district ranges.
  std::uint32_t nodes = 100000;
  /// Districts (= partition components). Contacts never span districts.
  std::uint32_t districts = 64;
  int days = 1;

  /// Fraction of each district's residents enrolled in campus cliques.
  double campusFraction = 0.3;
  /// Residents per campus clique (cliques are fixed contiguous groups).
  std::uint32_t campusCliqueSize = 25;
  /// Class sessions each clique holds per day, at on-the-hour slots.
  int campusSessionsPerCliquePerDay = 3;
  Duration campusSessionDuration = kHour;
  /// Probability an enrolled resident attends a given session.
  double campusAttendanceRate = 0.8;

  /// Expected transit meetings per resident per day (pairwise Poisson).
  double transitMeetingsPerNodePerDay = 2.0;
  Duration meanTransitContactDuration = 2 * kMinute;

  /// Expected pedestrian meetings per resident per day (pairwise Poisson,
  /// RWP-approximated).
  double walkMeetingsPerNodePerDay = 1.0;
  Duration meanWalkContactDuration = 4 * kMinute;

  /// All activity happens within these hours each day.
  SimTime dayStart = 6 * kHour;
  SimTime dayEnd = 23 * kHour;
  std::uint64_t seed = 1;

  /// One message per violation; empty when valid.
  [[nodiscard]] std::vector<std::string> validate() const;
};

/// Lazily generates the city trace. Memory is one operating-hour window of
/// contacts across all districts regardless of days or population.
class CityStream final : public ContactStream {
 public:
  /// Asserts params.validate() is empty.
  explicit CityStream(const CityParams& params);

  std::optional<Contact> next() override;
  void reset() override;
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] std::size_t nodeCount() const override {
    return params_.nodes;
  }
  /// days * 86400: contacts are clamped to their day.
  [[nodiscard]] SimTime endTime() const override {
    return static_cast<SimTime>(params_.days) * kDay;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& partitionHint()
      const override {
    return districtOf_;
  }

 private:
  struct District {
    std::uint32_t firstNode = 0;
    std::uint32_t nodes = 0;
    Rng rng{0};
    /// This day's campus session start offsets, per clique (drawn at the
    /// start of each day).
    std::vector<std::vector<SimTime>> sessionStarts;
  };

  void startDay(int day);
  /// Appends one district's contacts for window [from, to) to window_.
  void fillDistrictWindow(District& d, SimTime from, SimTime to);
  /// Advances to the next non-empty window; false when the trace ends.
  bool fillWindow();

  CityParams params_;
  std::string name_ = "city";
  std::vector<std::uint32_t> districtOf_;
  std::vector<District> districts_;
  int day_ = -1;
  SimTime windowStart_ = 0;
  std::vector<Contact> window_;
  std::size_t pos_ = 0;
};

/// Materializes the stream into a ContactTrace. Intended for tests and
/// small configurations; a day-long 10^6-node city is gigabytes.
[[nodiscard]] ContactTrace generateCity(const CityParams& params);

}  // namespace hdtn::trace
