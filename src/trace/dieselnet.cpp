#include "src/trace/dieselnet.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <istream>
#include <sstream>

#include "src/util/string_util.hpp"

namespace hdtn::trace {
namespace {

bool routesConnected(int a, int b, int routes) {
  const int diff = std::abs(a - b);
  return diff == 1 || diff == routes - 1;
}

}  // namespace

int dieselNetRouteOf(const DieselNetParams& params, NodeId bus) {
  return static_cast<int>(bus.value) % params.routes;
}

ContactTrace generateDieselNet(const DieselNetParams& params) {
  assert(params.buses >= 2);
  assert(params.routes >= 1);
  assert(params.days >= 1);
  assert(params.dayEnd > params.dayStart);

  ContactTrace out("dieselnet", static_cast<std::size_t>(params.buses));
  Rng rng(params.seed);

  const double windowSeconds =
      static_cast<double>(params.dayEnd - params.dayStart);

  for (std::uint32_t a = 0; a < static_cast<std::uint32_t>(params.buses);
       ++a) {
    for (std::uint32_t b = a + 1;
         b < static_cast<std::uint32_t>(params.buses); ++b) {
      const int routeA = dieselNetRouteOf(params, NodeId(a));
      const int routeB = dieselNetRouteOf(params, NodeId(b));
      double ratePerDay = params.backgroundMeetingsPerDay;
      if (routeA == routeB) {
        ratePerDay = params.sameRouteMeetingsPerDay;
      } else if (routesConnected(routeA, routeB, params.routes)) {
        ratePerDay = params.connectedRouteMeetingsPerDay;
      }
      if (ratePerDay <= 0.0) continue;

      // Poisson arrivals within each day's operating window. Meetings are
      // independent across days (buses restart their shifts each morning).
      for (int day = 0; day < params.days; ++day) {
        const SimTime dayBase = static_cast<SimTime>(day) * kDay;
        double t = 0.0;
        while (true) {
          t += rng.exponential(windowSeconds / ratePerDay);
          if (t >= windowSeconds) break;
          const auto start =
              dayBase + params.dayStart + static_cast<SimTime>(t);
          const auto duration = static_cast<Duration>(
              std::max(5.0, rng.exponential(params.meanContactDuration)));
          Contact c;
          c.start = start;
          c.end = start + duration;
          c.members = {NodeId(a), NodeId(b)};
          out.addContact(std::move(c));
        }
      }
    }
  }
  out.sortByStart();
  return out;
}

LineParse parseDieselNetLine(std::string_view line, Contact* out,
                             std::string* why) {
  const std::string_view body = trim(line);
  if (body.empty() || body.front() == '#') return LineParse::kBlank;
  auto fail = [&](std::string reason) {
    if (why != nullptr) *why = std::move(reason);
    return LineParse::kError;
  };
  std::istringstream fields{std::string(body)};
  std::uint32_t a = 0, b = 0;
  double start = 0.0, duration = 0.0;
  if (!(fields >> a >> b >> start >> duration)) {
    return fail("malformed meeting record (want: <bus-a> <bus-b> "
                "<start-seconds> <duration-seconds> [<bytes>])");
  }
  double bytes = 0.0;
  fields >> bytes;  // optional trailing byte count, ignored
  if (!fields.eof()) {
    return fail("unexpected trailing field after the byte count");
  }
  if (a == b) {
    return fail("bus " + std::to_string(a) + " cannot meet itself");
  }
  if (start < 0.0) return fail("negative meeting start time");
  if (duration <= 0.0) return fail("non-positive meeting duration");
  Contact c;
  c.start = static_cast<SimTime>(start);
  c.end = static_cast<SimTime>(start + duration);
  if (c.end <= c.start) c.end = c.start + 1;
  c.members = {NodeId(a), NodeId(b)};
  *out = std::move(c);
  return LineParse::kContact;
}

std::optional<ContactTrace> readDieselNetLog(std::istream& is,
                                             std::string* error) {
  ContactTrace trace("dieselnet-import", 0);
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(is, line)) {
    ++lineNo;
    Contact c;
    std::string why;
    switch (parseDieselNetLine(line, &c, &why)) {
      case LineParse::kBlank:
        break;
      case LineParse::kError:
        if (error != nullptr) {
          *error = "line " + std::to_string(lineNo) + ": " + why;
        }
        return std::nullopt;
      case LineParse::kContact:
        trace.addContact(std::move(c));
        break;
    }
  }
  trace.sortByStart();
  return trace;
}

}  // namespace hdtn::trace
