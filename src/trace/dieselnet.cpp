#include "src/trace/dieselnet.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace hdtn::trace {
namespace {

bool routesConnected(int a, int b, int routes) {
  const int diff = std::abs(a - b);
  return diff == 1 || diff == routes - 1;
}

}  // namespace

int dieselNetRouteOf(const DieselNetParams& params, NodeId bus) {
  return static_cast<int>(bus.value) % params.routes;
}

ContactTrace generateDieselNet(const DieselNetParams& params) {
  assert(params.buses >= 2);
  assert(params.routes >= 1);
  assert(params.days >= 1);
  assert(params.dayEnd > params.dayStart);

  ContactTrace out("dieselnet", static_cast<std::size_t>(params.buses));
  Rng rng(params.seed);

  const double windowSeconds =
      static_cast<double>(params.dayEnd - params.dayStart);

  for (std::uint32_t a = 0; a < static_cast<std::uint32_t>(params.buses);
       ++a) {
    for (std::uint32_t b = a + 1;
         b < static_cast<std::uint32_t>(params.buses); ++b) {
      const int routeA = dieselNetRouteOf(params, NodeId(a));
      const int routeB = dieselNetRouteOf(params, NodeId(b));
      double ratePerDay = params.backgroundMeetingsPerDay;
      if (routeA == routeB) {
        ratePerDay = params.sameRouteMeetingsPerDay;
      } else if (routesConnected(routeA, routeB, params.routes)) {
        ratePerDay = params.connectedRouteMeetingsPerDay;
      }
      if (ratePerDay <= 0.0) continue;

      // Poisson arrivals within each day's operating window. Meetings are
      // independent across days (buses restart their shifts each morning).
      for (int day = 0; day < params.days; ++day) {
        const SimTime dayBase = static_cast<SimTime>(day) * kDay;
        double t = 0.0;
        while (true) {
          t += rng.exponential(windowSeconds / ratePerDay);
          if (t >= windowSeconds) break;
          const auto start =
              dayBase + params.dayStart + static_cast<SimTime>(t);
          const auto duration = static_cast<Duration>(
              std::max(5.0, rng.exponential(params.meanContactDuration)));
          Contact c;
          c.start = start;
          c.end = start + duration;
          c.members = {NodeId(a), NodeId(b)};
          out.addContact(std::move(c));
        }
      }
    }
  }
  out.sortByStart();
  return out;
}

}  // namespace hdtn::trace
