// Synthetic NUS-student-style campus trace generator.
//
// The paper's synthetic trace derives student contacts from National
// University of Singapore class schedules (Srinivasan et al., MobiCom'06):
// "students can receive messages from each other if and only if they are in
// the same classroom". We reproduce that construction directly: students are
// enrolled in courses; each course holds sessions at fixed daily time slots;
// every held session emits one clique contact over the students who attend
// it. The `attendanceRate` parameter — each enrolled student independently
// attends a given session with this probability — is the x-axis of the
// paper's Figure 3(f).
//
// Sessions recur every day of the simulated period (the generator does not
// model weekends; the paper's frequent-contact rule for this trace is
// "contacts at least once per day", which presumes daily class activity).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/trace/contact_trace.hpp"
#include "src/util/random.hpp"

namespace hdtn::trace {

struct NusParams {
  int students = 200;
  int courses = 40;
  /// Courses each student enrolls in.
  int coursesPerStudent = 4;
  /// Sessions each course holds per day.
  int sessionsPerCourseDay = 1;
  int days = 14;
  /// Probability an enrolled student attends a given session.
  double attendanceRate = 0.85;
  /// Length of one class session.
  Duration sessionDuration = 2 * kHour;
  /// Sessions are scheduled on the hour within this window.
  SimTime dayStart = 8 * kHour;
  SimTime dayEnd = 18 * kHour;
  std::uint64_t seed = 1;
};

/// The static schedule: which students take which course, and at what daily
/// time slot each course meets. Exposed so tests and the engine can reason
/// about expected co-presence.
struct NusSchedule {
  /// enrollment[c] = sorted student ids enrolled in course c.
  std::vector<std::vector<NodeId>> enrollment;
  /// sessionStart[c][k] = daily start offset of course c's k-th session.
  std::vector<std::vector<SimTime>> sessionStart;
};

/// Builds the deterministic schedule for the parameters (depends only on
/// params.seed and the structural fields, not on attendanceRate).
[[nodiscard]] NusSchedule buildNusSchedule(const NusParams& params);

/// Generates the full trace: one clique contact per held session per day
/// over that session's attendees (sessions with fewer than two attendees
/// produce no contact).
[[nodiscard]] ContactTrace generateNus(const NusParams& params);

/// Same, but over a pre-built schedule; attendance is re-drawn from
/// params.seed. Used to sweep attendanceRate with a fixed schedule.
[[nodiscard]] ContactTrace generateNus(const NusParams& params,
                                       const NusSchedule& schedule);

/// Parses an NUS-style session log, one held class session per line
/// ('#' comments and blank lines allowed):
///   <day> <start-offset-seconds> <duration-seconds> <student> [<student>...]
/// The contact starts at day * 86400 + offset and spans the attendee clique.
/// Sessions with one attendee are kept in the input format but produce no
/// contact (matching the generator). Malformed lines — bad fields, negative
/// day, an offset outside [0, 86400), non-positive duration, no attendees —
/// fail with a line-numbered error and return std::nullopt.
[[nodiscard]] std::optional<ContactTrace> readNusSessions(std::istream& is,
                                                          std::string* error);

/// Parses one line of the session-log format into `out` (members in input
/// order, not yet normalized). The single building block behind both
/// readNusSessions and the streaming reader (trace/streaming.hpp), so the
/// two accept byte-identical input. On kError, `why` receives the reason
/// (without the line number).
[[nodiscard]] LineParse parseNusSessionLine(std::string_view line,
                                            Contact* out, std::string* why);

}  // namespace hdtn::trace
