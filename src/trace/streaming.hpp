// Streaming contact traces.
//
// A materialized ContactTrace holds every contact in memory; at city scale
// (10^5–10^6 nodes, millions of contacts per day) that is gigabytes before
// the simulation even starts. A ContactStream instead yields contacts on
// demand, in exactly the (start, end, members) order ContactTrace::sortByStart
// establishes, so the sharded engine (core/sharded_engine.hpp) can consume a
// day-long city trace holding only one sync epoch of contacts at a time.
//
// Three families of streams:
//   * MaterializedStream — adapts an existing (sorted) ContactTrace; the
//     bridge that lets every consumer take a stream.
//   * indexed log streams (openNusSessionStream / openDieselNetStream) —
//     retrofit the text-log importers: pass 1 validates every line with the
//     same parser the materialized reader uses and builds a compact
//     (start, end, byte-offset) index; next() then seeks and re-parses lines
//     on demand, so member lists never all coexist in memory.
//   * CityStream (trace/citygen.hpp) — generates contacts lazily.
//
// Equivalence contract (tested): iterating a stream yields the exact contact
// sequence the corresponding materialized ContactTrace holds.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/trace/contact_trace.hpp"
#include "src/util/types.hpp"

namespace hdtn::trace {

/// A lazy, replayable, sorted sequence of contacts.
class ContactStream {
 public:
  virtual ~ContactStream() = default;

  /// The next contact in (start, end, members) order; nullopt when the
  /// stream is exhausted. Contacts are normalized like
  /// ContactTrace::addContact: members sorted and distinct (>= 2), end >
  /// start.
  virtual std::optional<Contact> next() = 0;

  /// Rewinds to the first contact. Streams are deterministic: a replay
  /// yields the identical sequence (checkpoint restore depends on this).
  virtual void reset() = 0;

  [[nodiscard]] virtual const std::string& name() const = 0;

  /// Node universe: ids are [0, nodeCount).
  [[nodiscard]] virtual std::size_t nodeCount() const = 0;

  /// Upper bound on contact end times (the natural run horizon). Known up
  /// front for every stream family (index pass / trace span / day count).
  [[nodiscard]] virtual SimTime endTime() const = 0;

  /// Optional node -> partition label. A generator that constructs contacts
  /// partition-local (CityStream: contacts never span districts) reports the
  /// labels here so the sharded engine can skip its union-find pre-pass over
  /// all contacts. Empty = unknown; labels need not be dense.
  [[nodiscard]] virtual const std::vector<std::uint32_t>& partitionHint()
      const;
};

/// Adapts a sorted ContactTrace (non-owning; the trace must outlive the
/// stream and must already be sortByStart()-ordered).
class MaterializedStream final : public ContactStream {
 public:
  explicit MaterializedStream(const ContactTrace& trace) : trace_(&trace) {}

  std::optional<Contact> next() override;
  void reset() override { pos_ = 0; }
  [[nodiscard]] const std::string& name() const override {
    return trace_->name();
  }
  [[nodiscard]] std::size_t nodeCount() const override {
    return trace_->nodeCount();
  }
  [[nodiscard]] SimTime endTime() const override { return trace_->endTime(); }

 private:
  const ContactTrace* trace_;
  std::size_t pos_ = 0;
};

/// Streaming NUS session-log reader over a seekable istream (file or string
/// stream; non-owning, must outlive the returned stream). Performs the index
/// pass immediately: on malformed input returns nullptr with a line-numbered
/// message in `error`, exactly like readNusSessions.
[[nodiscard]] std::unique_ptr<ContactStream> openNusSessionStream(
    std::istream& is, std::string* error);

/// Streaming DieselNet meeting-log reader; same contract as above, matching
/// readDieselNetLog.
[[nodiscard]] std::unique_ptr<ContactStream> openDieselNetStream(
    std::istream& is, std::string* error);

/// Drains a stream into a ContactTrace (reset first, then every contact).
/// Intended for tests and small inputs; defeats the purpose at city scale.
[[nodiscard]] ContactTrace materialize(ContactStream& stream);

}  // namespace hdtn::trace
