// Contact traces.
//
// A DTN is described by its contacts: windows of time during which a set of
// nodes can communicate (the space-time-graph view of a DTN, paper Section
// II-A). We represent both trace families the paper evaluates on with one
// type:
//   * pairwise traces (UMassDieselNet): every contact has exactly 2 members;
//   * clique traces (NUS student trace): a contact is a classroom session
//     and all attendees form one clique.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "src/util/types.hpp"

namespace hdtn::trace {

/// Outcome of parsing one line of a text trace log (NUS session logs,
/// DieselNet meeting logs). Shared by the materialized readers and the
/// streaming readers in streaming.hpp so both accept exactly the same input.
enum class LineParse {
  kContact,  ///< a contact record was parsed into the output
  kBlank,    ///< blank line or comment; nothing parsed
  kError,    ///< malformed; the reason was written to the error output
};

/// One contact: all `members` can hear each other during [start, end).
struct Contact {
  SimTime start = 0;
  SimTime end = 0;
  std::vector<NodeId> members;

  [[nodiscard]] Duration duration() const { return end - start; }
  [[nodiscard]] bool isPairwise() const { return members.size() == 2; }

  friend bool operator==(const Contact&, const Contact&) = default;
};

/// An ordered collection of contacts plus the node universe.
class ContactTrace {
 public:
  ContactTrace() = default;
  ContactTrace(std::string name, std::size_t nodeCount);

  /// Appends a contact. Members are sorted and deduplicated; contacts with
  /// fewer than two distinct members or non-positive duration are rejected.
  /// Returns false when rejected.
  bool addContact(Contact contact);

  /// Sorts contacts by (start, end, members); call once after building.
  void sortByStart();

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t nodeCount() const { return nodeCount_; }
  void setNodeCount(std::size_t n) { nodeCount_ = n; }
  [[nodiscard]] std::span<const Contact> contacts() const { return contacts_; }
  [[nodiscard]] std::size_t contactCount() const { return contacts_.size(); }
  [[nodiscard]] bool empty() const { return contacts_.empty(); }

  /// Time of the last contact end (0 for an empty trace).
  [[nodiscard]] SimTime endTime() const;

  /// True if every contact is pairwise.
  [[nodiscard]] bool isPairwiseOnly() const;

  /// All node ids, ascending. Derived from nodeCount: ids are [0, n).
  [[nodiscard]] std::vector<NodeId> allNodes() const;

  /// Restriction of the trace to [from, to).
  [[nodiscard]] ContactTrace slice(SimTime from, SimTime to) const;

 private:
  std::string name_ = "trace";
  std::size_t nodeCount_ = 0;
  std::vector<Contact> contacts_;
};

}  // namespace hdtn::trace
