#include "src/trace/trace_io.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "src/util/string_util.hpp"

namespace hdtn::trace {

void writeTrace(const ContactTrace& trace, std::ostream& os) {
  os << "# hdtn contact trace\n";
  os << "trace " << trace.name() << ' ' << trace.nodeCount() << '\n';
  for (const Contact& c : trace.contacts()) {
    os << "c " << c.start << ' ' << c.end;
    for (NodeId m : c.members) os << ' ' << m.value;
    os << '\n';
  }
}

std::optional<ContactTrace> readTrace(std::istream& is, std::string* error) {
  ContactTrace trace;
  std::string line;
  std::size_t lineNo = 0;
  bool sawHeader = false;
  bool sawContact = false;
  std::size_t declaredNodes = 0;
  auto fail = [&](const std::string& why) -> std::optional<ContactTrace> {
    if (error != nullptr) {
      *error = "line " + std::to_string(lineNo) + ": " + why;
    }
    return std::nullopt;
  };
  while (std::getline(is, line)) {
    ++lineNo;
    std::string_view body = trim(line);
    if (body.empty() || body.front() == '#') continue;
    std::istringstream fields{std::string(body)};
    std::string kind;
    fields >> kind;
    if (kind == "trace") {
      if (sawHeader) return fail("duplicate trace header");
      if (sawContact) {
        return fail("trace header must precede the first contact");
      }
      std::string name;
      std::size_t nodeCount = 0;
      if (!(fields >> name >> nodeCount)) {
        return fail("malformed trace header (want: trace <name> <node-count>)");
      }
      std::string extra;
      if (fields >> extra) {
        return fail("unexpected field '" + extra + "' after the node count");
      }
      trace = ContactTrace(name, nodeCount);
      sawHeader = true;
      declaredNodes = nodeCount;
    } else if (kind == "c") {
      Contact c;
      if (!(fields >> c.start >> c.end)) {
        return fail("malformed contact times");
      }
      std::uint32_t id = 0;
      while (fields >> id) c.members.emplace_back(id);
      if (!fields.eof()) return fail("malformed member id");
      if (sawHeader) {
        for (const NodeId m : c.members) {
          if (m.value >= declaredNodes) {
            return fail("member id " + std::to_string(m.value) +
                        " is outside the declared node universe (node count " +
                        std::to_string(declaredNodes) + ")");
          }
        }
      }
      if (!trace.addContact(std::move(c))) {
        return fail("invalid contact (needs >=2 distinct members, end>start)");
      }
      sawContact = true;
    } else {
      return fail("unknown record kind '" + kind + "'");
    }
  }
  trace.sortByStart();
  return trace;
}

bool saveTraceFile(const ContactTrace& trace, const std::string& path,
                   std::string* error) {
  std::ofstream os(path);
  if (!os) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  writeTrace(trace, os);
  return static_cast<bool>(os);
}

std::optional<ContactTrace> loadTraceFile(const std::string& path,
                                          std::string* error) {
  std::ifstream is(path);
  if (!is) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  return readTrace(is, error);
}

std::optional<ContactTrace> readOneTrace(std::istream& is,
                                         std::string* error) {
  ContactTrace trace("one-import", 0);
  std::map<std::pair<std::uint32_t, std::uint32_t>, SimTime> open;
  std::string line;
  std::size_t lineNo = 0;
  SimTime latest = 0;
  auto fail = [&](const std::string& why) -> std::optional<ContactTrace> {
    if (error != nullptr) {
      *error = "line " + std::to_string(lineNo) + ": " + why;
    }
    return std::nullopt;
  };
  while (std::getline(is, line)) {
    ++lineNo;
    std::string_view body = trim(line);
    if (body.empty() || body.front() == '#') continue;
    std::istringstream fields{std::string(body)};
    double time = 0.0;
    std::string kind;
    if (!(fields >> time >> kind)) {
      return fail("malformed ONE event");
    }
    if (kind != "CONN") continue;  // other event kinds are skipped
    std::string state;
    std::uint32_t a = 0, b = 0;
    if (!(fields >> a >> b >> state)) {
      return fail("malformed ONE event");
    }
    if (a == b) continue;
    if (a > b) std::swap(a, b);
    const auto when = static_cast<SimTime>(time);
    latest = std::max(latest, when);
    if (state == "up") {
      open.try_emplace({a, b}, when);
    } else if (state == "down") {
      auto it = open.find({a, b});
      if (it == open.end()) continue;  // truncated log: ignore
      Contact c;
      c.start = it->second;
      c.end = when;
      c.members = {NodeId(a), NodeId(b)};
      trace.addContact(std::move(c));  // zero-length contacts rejected
      open.erase(it);
    } else {
      return fail("unknown CONN state '" + state + "'");
    }
  }
  for (const auto& [pair, start] : open) {
    Contact c;
    c.start = start;
    c.end = latest + 1;
    c.members = {NodeId(pair.first), NodeId(pair.second)};
    trace.addContact(std::move(c));
  }
  trace.sortByStart();
  return trace;
}

}  // namespace hdtn::trace
