#include "src/trace/trace_stats.hpp"

#include <algorithm>
#include <set>

namespace hdtn::trace {

NodePair makePair(NodeId a, NodeId b) {
  return a < b ? NodePair{a, b} : NodePair{b, a};
}

TraceSummary summarize(const ContactTrace& trace) {
  TraceSummary s;
  s.nodeCount = trace.nodeCount();
  s.contactCount = trace.contactCount();
  s.span = trace.endTime();
  if (trace.empty()) return s;

  RunningStats duration, cliqueSize;
  std::vector<std::size_t> perNodeContacts(trace.nodeCount(), 0);
  for (const Contact& c : trace.contacts()) {
    duration.add(static_cast<double>(c.duration()));
    cliqueSize.add(static_cast<double>(c.members.size()));
    for (NodeId m : c.members) ++perNodeContacts[m.value];
  }
  s.meanContactDuration = duration.mean();
  s.meanCliqueSize = cliqueSize.mean();

  const double days =
      std::max(1.0, static_cast<double>(s.span) / static_cast<double>(kDay));
  RunningStats perDay;
  for (std::size_t n : perNodeContacts) {
    perDay.add(static_cast<double>(n) / days);
  }
  s.meanContactsPerNodePerDay = perDay.mean();

  SampleSet gaps = interContactTimes(trace);
  s.meanInterContactTime = gaps.count() ? gaps.mean() : 0.0;
  return s;
}

std::map<NodePair, std::size_t> pairContactCounts(const ContactTrace& trace) {
  std::map<NodePair, std::size_t> counts;
  for (const Contact& c : trace.contacts()) {
    for (std::size_t i = 0; i < c.members.size(); ++i) {
      for (std::size_t j = i + 1; j < c.members.size(); ++j) {
        ++counts[makePair(c.members[i], c.members[j])];
      }
    }
  }
  return counts;
}

SampleSet interContactTimes(const ContactTrace& trace) {
  std::map<NodePair, std::vector<SimTime>> starts;
  for (const Contact& c : trace.contacts()) {
    for (std::size_t i = 0; i < c.members.size(); ++i) {
      for (std::size_t j = i + 1; j < c.members.size(); ++j) {
        starts[makePair(c.members[i], c.members[j])].push_back(c.start);
      }
    }
  }
  SampleSet gaps;
  for (auto& [pair, times] : starts) {
    std::sort(times.begin(), times.end());
    for (std::size_t i = 1; i < times.size(); ++i) {
      gaps.add(static_cast<double>(times[i] - times[i - 1]));
    }
  }
  return gaps;
}

std::vector<NodePair> frequentContactPairs(const ContactTrace& trace,
                                           Duration period) {
  const SimTime span = trace.endTime();
  if (span <= 0 || period <= 0) return {};
  // Number of full windows; a trailing partial window shorter than half the
  // period is ignored so that a trace of 3.2 days with a 1-day period needs
  // contacts in 3 windows, not 4.
  std::size_t windows = static_cast<std::size_t>(span / period);
  if (span % period >= period / 2 || windows == 0) ++windows;

  // pair -> set of window indices covered.
  std::map<NodePair, std::set<std::size_t>> covered;
  for (const Contact& c : trace.contacts()) {
    const auto firstWindow = static_cast<std::size_t>(c.start / period);
    // A contact can straddle a window boundary; credit every overlapped one.
    const auto lastWindow = static_cast<std::size_t>((c.end - 1) / period);
    for (std::size_t i = 0; i < c.members.size(); ++i) {
      for (std::size_t j = i + 1; j < c.members.size(); ++j) {
        auto& windowsOf = covered[makePair(c.members[i], c.members[j])];
        for (std::size_t w = firstWindow;
             w <= lastWindow && w < windows; ++w) {
          windowsOf.insert(w);
        }
      }
    }
  }
  std::vector<NodePair> out;
  for (const auto& [pair, windowsOf] : covered) {
    if (windowsOf.size() >= windows) out.push_back(pair);
  }
  return out;
}

std::vector<std::vector<NodeId>> frequentContactLists(
    const ContactTrace& trace, Duration period) {
  std::vector<std::vector<NodeId>> lists(trace.nodeCount());
  for (const auto& [a, b] : frequentContactPairs(trace, period)) {
    lists[a.value].push_back(b);
    lists[b.value].push_back(a);
  }
  for (auto& l : lists) std::sort(l.begin(), l.end());
  return lists;
}

}  // namespace hdtn::trace
