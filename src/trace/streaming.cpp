#include "src/trace/streaming.hpp"

#include <algorithm>
#include <cassert>
#include <istream>

#include "src/trace/dieselnet.hpp"
#include "src/trace/nus.hpp"

namespace hdtn::trace {

const std::vector<std::uint32_t>& ContactStream::partitionHint() const {
  static const std::vector<std::uint32_t> kNone;
  return kNone;
}

std::optional<Contact> MaterializedStream::next() {
  const auto contacts = trace_->contacts();
  if (pos_ >= contacts.size()) return std::nullopt;
  return contacts[pos_++];
}

namespace {

using LineParser = LineParse (*)(std::string_view, Contact*, std::string*);

/// Streams a text trace log through a compact index.
///
/// Pass 1 (construction) runs the shared line parser over every line —
/// identical validation to the materialized readers — but keeps only
/// (start, end, byte offset) per accepted contact, 24 bytes instead of a
/// member vector. The index is sorted by (start, end, offset); emission
/// re-parses lines on demand. Lines tied on (start, end) are parsed as a
/// group and ordered by their member lists, reproducing sortByStart's
/// (start, end, members) order exactly.
class IndexedLogStream final : public ContactStream {
 public:
  IndexedLogStream(std::istream& is, LineParser parser, std::string name)
      : is_(&is), parser_(parser), name_(std::move(name)) {}

  /// The index pass. False (with a line-numbered `error`) on bad input.
  bool index(std::string* error) {
    is_->clear();
    is_->seekg(0);
    std::string line;
    std::size_t lineNo = 0;
    while (true) {
      const auto offset = is_->tellg();
      if (!std::getline(*is_, line)) break;
      ++lineNo;
      Contact c;
      std::string why;
      switch (parser_(line, &c, &why)) {
        case LineParse::kBlank:
          break;
        case LineParse::kError:
          if (error != nullptr) {
            *error = "line " + std::to_string(lineNo) + ": " + why;
          }
          return false;
        case LineParse::kContact: {
          // Mirror addContact's normalization and rejection rules.
          std::sort(c.members.begin(), c.members.end());
          c.members.erase(std::unique(c.members.begin(), c.members.end()),
                          c.members.end());
          if (c.members.size() < 2 || c.end <= c.start) break;
          index_.push_back(IndexEntry{
              c.start, c.end, static_cast<std::uint64_t>(offset)});
          for (NodeId m : c.members) {
            nodeCount_ = std::max<std::size_t>(nodeCount_, m.value + 1);
          }
          endTime_ = std::max(endTime_, c.end);
          break;
        }
      }
    }
    std::sort(index_.begin(), index_.end(),
              [](const IndexEntry& a, const IndexEntry& b) {
                if (a.start != b.start) return a.start < b.start;
                if (a.end != b.end) return a.end < b.end;
                return a.offset < b.offset;
              });
    return true;
  }

  std::optional<Contact> next() override {
    if (groupPos_ >= group_.size()) {
      if (!fillGroup()) return std::nullopt;
    }
    return std::move(group_[groupPos_++]);
  }

  void reset() override {
    pos_ = 0;
    group_.clear();
    groupPos_ = 0;
  }

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] std::size_t nodeCount() const override { return nodeCount_; }
  [[nodiscard]] SimTime endTime() const override { return endTime_; }

 private:
  struct IndexEntry {
    SimTime start;
    SimTime end;
    std::uint64_t offset;
  };

  Contact parseAt(std::uint64_t offset) {
    is_->clear();
    is_->seekg(static_cast<std::streamoff>(offset));
    std::string line;
    std::getline(*is_, line);
    Contact c;
    [[maybe_unused]] const LineParse parsed = parser_(line, &c, nullptr);
    assert(parsed == LineParse::kContact && "index points at a valid line");
    std::sort(c.members.begin(), c.members.end());
    c.members.erase(std::unique(c.members.begin(), c.members.end()),
                    c.members.end());
    return c;
  }

  /// Loads the next run of index entries tied on (start, end) and orders
  /// the parsed contacts by members.
  bool fillGroup() {
    group_.clear();
    groupPos_ = 0;
    if (pos_ >= index_.size()) return false;
    const IndexEntry& head = index_[pos_];
    std::size_t last = pos_;
    while (last + 1 < index_.size() && index_[last + 1].start == head.start &&
           index_[last + 1].end == head.end) {
      ++last;
    }
    group_.reserve(last - pos_ + 1);
    for (std::size_t i = pos_; i <= last; ++i) {
      group_.push_back(parseAt(index_[i].offset));
    }
    pos_ = last + 1;
    std::sort(group_.begin(), group_.end(),
              [](const Contact& a, const Contact& b) {
                return a.members < b.members;
              });
    return true;
  }

  std::istream* is_;
  LineParser parser_;
  std::string name_;
  std::vector<IndexEntry> index_;
  std::size_t nodeCount_ = 0;
  SimTime endTime_ = 0;
  std::size_t pos_ = 0;
  std::vector<Contact> group_;
  std::size_t groupPos_ = 0;
};

std::unique_ptr<ContactStream> openLogStream(std::istream& is,
                                             LineParser parser,
                                             std::string name,
                                             std::string* error) {
  auto stream =
      std::make_unique<IndexedLogStream>(is, parser, std::move(name));
  if (!stream->index(error)) return nullptr;
  return stream;
}

}  // namespace

std::unique_ptr<ContactStream> openNusSessionStream(std::istream& is,
                                                    std::string* error) {
  return openLogStream(is, &parseNusSessionLine, "nus-import", error);
}

std::unique_ptr<ContactStream> openDieselNetStream(std::istream& is,
                                                   std::string* error) {
  return openLogStream(is, &parseDieselNetLine, "dieselnet-import", error);
}

ContactTrace materialize(ContactStream& stream) {
  stream.reset();
  ContactTrace out(stream.name(), stream.nodeCount());
  while (auto contact = stream.next()) {
    out.addContact(*std::move(contact));
  }
  // Streams are already sorted; kept for the class invariant.
  out.sortByStart();
  return out;
}

}  // namespace hdtn::trace
