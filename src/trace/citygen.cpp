#include "src/trace/citygen.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace hdtn::trace {
namespace {

/// Per-district stream salt: every district forks its own RNG from the base
/// seed, so districts are independent and a district's sequence does not
/// depend on how many districts exist before it consumed their draws.
constexpr std::uint64_t kDistrictSalt = 0xd157000000000000ull;

/// Floor on pairwise encounter durations (radio contacts below a few
/// seconds carry nothing useful).
constexpr double kMinEncounterSeconds = 10.0;

}  // namespace

std::vector<std::string> CityParams::validate() const {
  std::vector<std::string> errors;
  auto check = [&](bool ok, const char* message) {
    if (!ok) errors.emplace_back(message);
  };
  check(nodes >= 2, "nodes must be at least 2");
  check(districts >= 1, "districts must be at least 1");
  check(districts <= nodes, "districts must not exceed nodes");
  check(days >= 1, "days must be at least 1");
  check(campusFraction >= 0.0 && campusFraction <= 1.0,
        "campusFraction must lie in [0, 1]");
  check(campusCliqueSize >= 2, "campusCliqueSize must be at least 2");
  check(campusSessionsPerCliquePerDay >= 0,
        "campusSessionsPerCliquePerDay must be non-negative");
  check(campusSessionDuration > 0, "campusSessionDuration must be positive");
  check(campusAttendanceRate >= 0.0 && campusAttendanceRate <= 1.0,
        "campusAttendanceRate must lie in [0, 1]");
  check(transitMeetingsPerNodePerDay >= 0.0,
        "transitMeetingsPerNodePerDay must be non-negative");
  check(meanTransitContactDuration > 0,
        "meanTransitContactDuration must be positive");
  check(walkMeetingsPerNodePerDay >= 0.0,
        "walkMeetingsPerNodePerDay must be non-negative");
  check(meanWalkContactDuration > 0,
        "meanWalkContactDuration must be positive");
  check(dayStart >= 0 && dayStart < dayEnd && dayEnd <= kDay,
        "operating window must satisfy 0 <= dayStart < dayEnd <= 86400");
  check(campusSessionDuration <= dayEnd - dayStart,
        "campusSessionDuration must fit the operating window");
  return errors;
}

CityStream::CityStream(const CityParams& params) : params_(params) {
  assert(params.validate().empty());
  const std::uint32_t per = (params_.nodes + params_.districts - 1) /
                            params_.districts;
  districtOf_.resize(params_.nodes);
  districts_.resize(params_.districts);
  for (std::uint32_t d = 0; d < params_.districts; ++d) {
    const std::uint32_t first = std::min(d * per, params_.nodes);
    const std::uint32_t last = std::min(first + per, params_.nodes);
    districts_[d].firstNode = first;
    districts_[d].nodes = last - first;
    for (std::uint32_t n = first; n < last; ++n) districtOf_[n] = d;
  }
  reset();
}

void CityStream::reset() {
  Rng base(params_.seed);
  for (std::uint32_t d = 0; d < params_.districts; ++d) {
    districts_[d].rng = base.fork(kDistrictSalt + d);
    districts_[d].sessionStarts.clear();
  }
  day_ = -1;
  windowStart_ = 0;
  window_.clear();
  pos_ = 0;
}

void CityStream::startDay(int day) {
  (void)day;
  const SimTime lastSlot = params_.dayEnd - params_.campusSessionDuration;
  const auto slotCount =
      static_cast<std::int64_t>((lastSlot - params_.dayStart) / kHour) + 1;
  for (District& d : districts_) {
    const auto campusCount = static_cast<std::uint32_t>(std::llround(
        params_.campusFraction * static_cast<double>(d.nodes)));
    const std::uint32_t cliques = campusCount / params_.campusCliqueSize;
    d.sessionStarts.assign(cliques, {});
    for (std::uint32_t c = 0; c < cliques; ++c) {
      for (int k = 0; k < params_.campusSessionsPerCliquePerDay; ++k) {
        const auto slot = d.rng.uniformInt(0, slotCount - 1);
        d.sessionStarts[c].push_back(params_.dayStart + slot * kHour);
      }
      std::sort(d.sessionStarts[c].begin(), d.sessionStarts[c].end());
    }
  }
}

void CityStream::fillDistrictWindow(District& d, SimTime from, SimTime to) {
  if (d.nodes < 2) return;
  const SimTime dayBase = static_cast<SimTime>(day_) * kDay;
  const SimTime dayBoundary = dayBase + kDay;
  const auto windowSeconds = static_cast<double>(to - from);
  const auto operatingSeconds =
      static_cast<double>(params_.dayEnd - params_.dayStart);

  // Campus clique sessions whose start falls inside the window.
  for (std::size_t c = 0; c < d.sessionStarts.size(); ++c) {
    const std::uint32_t cliqueFirst =
        d.firstNode + static_cast<std::uint32_t>(c) * params_.campusCliqueSize;
    for (SimTime startOffset : d.sessionStarts[c]) {
      const SimTime start = dayBase + startOffset;
      if (start < from || start >= to) continue;
      Contact contact;
      contact.start = start;
      contact.end = start + params_.campusSessionDuration;
      for (std::uint32_t m = 0; m < params_.campusCliqueSize; ++m) {
        if (d.rng.chance(params_.campusAttendanceRate)) {
          contact.members.emplace_back(cliqueFirst + m);
        }
      }
      if (contact.members.size() >= 2) window_.push_back(std::move(contact));
    }
  }

  // Pairwise Poisson encounters, restricted to the window. Restarting the
  // exponential clock at the window edge is exact for a Poisson process
  // (memorylessness), so windowing does not change the distribution.
  auto pairwise = [&](double meetingsPerNodePerDay, Duration meanDuration) {
    const double meetingsPerSecond = static_cast<double>(d.nodes) *
                                     meetingsPerNodePerDay / 2.0 /
                                     operatingSeconds;
    if (meetingsPerSecond <= 0.0) return;
    const double meanGap = 1.0 / meetingsPerSecond;
    double t = d.rng.exponential(meanGap);
    while (t < windowSeconds) {
      const SimTime start = from + static_cast<SimTime>(t);
      const auto duration = static_cast<Duration>(
          std::max(kMinEncounterSeconds,
                   d.rng.exponential(static_cast<double>(meanDuration))));
      auto a = static_cast<std::uint32_t>(
          d.rng.uniformInt(0, static_cast<std::int64_t>(d.nodes) - 1));
      auto b = a;
      while (b == a) {
        b = static_cast<std::uint32_t>(
            d.rng.uniformInt(0, static_cast<std::int64_t>(d.nodes) - 1));
      }
      if (a > b) std::swap(a, b);
      Contact contact;
      contact.start = start;
      contact.end = std::min(start + duration, dayBoundary);
      contact.members = {NodeId(d.firstNode + a), NodeId(d.firstNode + b)};
      window_.push_back(std::move(contact));
      t += d.rng.exponential(meanGap);
    }
  };
  pairwise(params_.transitMeetingsPerNodePerDay,
           params_.meanTransitContactDuration);
  pairwise(params_.walkMeetingsPerNodePerDay,
           params_.meanWalkContactDuration);
}

bool CityStream::fillWindow() {
  window_.clear();
  pos_ = 0;
  while (window_.empty()) {
    if (day_ < 0) {
      day_ = 0;
      windowStart_ = params_.dayStart;
      startDay(day_);
    } else {
      windowStart_ += kHour;
      if (windowStart_ >= params_.dayEnd) {
        ++day_;
        if (day_ >= params_.days) return false;
        windowStart_ = params_.dayStart;
        startDay(day_);
      }
    }
    const SimTime dayBase = static_cast<SimTime>(day_) * kDay;
    const SimTime from = dayBase + windowStart_;
    const SimTime to =
        dayBase + std::min(windowStart_ + kHour, params_.dayEnd);
    for (District& d : districts_) fillDistrictWindow(d, from, to);
    // Every contact's start lies inside the window, so sorting each window
    // yields the globally sorted sequence.
    std::sort(window_.begin(), window_.end(),
              [](const Contact& a, const Contact& b) {
                if (a.start != b.start) return a.start < b.start;
                if (a.end != b.end) return a.end < b.end;
                return a.members < b.members;
              });
  }
  return true;
}

std::optional<Contact> CityStream::next() {
  if (pos_ >= window_.size() && !fillWindow()) return std::nullopt;
  return window_[pos_++];
}

ContactTrace generateCity(const CityParams& params) {
  CityStream stream(params);
  ContactTrace out = materialize(stream);
  return out;
}

}  // namespace hdtn::trace
