#include "src/trace/cyclic.hpp"

#include <algorithm>
#include <cassert>
#include <set>

namespace hdtn::trace {

ContactTrace generateCyclic(const CyclicParams& params) {
  assert(params.period > 0);
  assert(params.cycles >= 1);
  ContactTrace out("cyclic", 0);
  Rng rng(params.seed);
  for (int cycle = 0; cycle < params.cycles; ++cycle) {
    const SimTime base = static_cast<SimTime>(cycle) * params.period;
    for (const CyclicSlot& slot : params.slots) {
      assert(slot.offset >= 0 && slot.offset < params.period);
      assert(slot.duration > 0);
      if (!rng.chance(slot.probability)) continue;
      SimTime start = base + slot.offset;
      if (params.startJitter > 0) {
        start += rng.uniformInt(-params.startJitter, params.startJitter);
        // Clamp inside this cycle.
        start = std::max(start, base);
        start = std::min(start, base + params.period - slot.duration);
      }
      Contact c;
      c.start = start;
      c.end = start + slot.duration;
      c.members = slot.members;
      out.addContact(std::move(c));
    }
  }
  out.sortByStart();
  return out;
}

std::vector<CyclicSlot> randomCyclicSlots(std::size_t nodes,
                                          std::size_t count, Duration period,
                                          std::size_t maxCliqueSize,
                                          Duration minDuration,
                                          Duration maxDuration,
                                          double minProbability, Rng& rng) {
  assert(nodes >= 2);
  assert(maxCliqueSize >= 2);
  assert(maxDuration >= minDuration && minDuration > 0);
  std::vector<CyclicSlot> slots;
  slots.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    CyclicSlot slot;
    const std::size_t size = static_cast<std::size_t>(
        rng.uniformInt(2, static_cast<std::int64_t>(
                              std::min(maxCliqueSize, nodes))));
    std::set<NodeId> members;
    while (members.size() < size) {
      members.insert(NodeId(static_cast<std::uint32_t>(
          rng.pickIndex(nodes))));
    }
    slot.members.assign(members.begin(), members.end());
    slot.duration = rng.uniformInt(minDuration, maxDuration);
    slot.offset = rng.uniformInt(0, period - slot.duration);
    slot.probability = rng.uniform(minProbability, 1.0);
    slots.push_back(std::move(slot));
  }
  return slots;
}

}  // namespace hdtn::trace
