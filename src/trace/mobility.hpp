// Random-waypoint mobility and geometric contact extraction.
//
// A third synthetic trace family besides the bus and campus generators: the
// classic pedestrian DTN model. Nodes move in a rectangular field under the
// random-waypoint model (pick a destination uniformly, walk at a uniform
// random speed, pause, repeat); two nodes are connected while within radio
// range. The extractor samples positions on a fixed tick, maintains the
// proximity graph, and emits one contact per connected interval of each
// node pair — i.e. a pairwise contact trace suitable for the engine and the
// routing substrate.
#pragma once

#include <cstdint>
#include <vector>

#include "src/trace/contact_trace.hpp"
#include "src/util/random.hpp"

namespace hdtn::trace {

struct RandomWaypointParams {
  int nodes = 50;
  /// Field dimensions in meters.
  double fieldWidth = 1000.0;
  double fieldHeight = 1000.0;
  /// Uniform speed range in m/s (pedestrian: 0.5 - 1.5).
  double minSpeed = 0.5;
  double maxSpeed = 1.5;
  /// Pause at each waypoint, uniform in [0, maxPause] seconds.
  Duration maxPause = 120;
  /// Radio range in meters.
  double radioRange = 50.0;
  /// Simulated duration in seconds.
  Duration duration = 12 * kHour;
  /// Position-sampling tick in seconds. Contacts shorter than one tick are
  /// not observed, exactly like a beacon-based real-world trace.
  Duration tick = 10;
  std::uint64_t seed = 1;
};

/// A node's position at a sampling instant.
struct Position {
  double x = 0.0;
  double y = 0.0;
};

/// Stateful random-waypoint walker; advance() moves it by dt seconds.
class RandomWaypointWalker {
 public:
  RandomWaypointWalker(const RandomWaypointParams& params, Rng rng);

  void advance(Duration dt);
  [[nodiscard]] Position position() const { return position_; }

 private:
  void pickWaypoint();

  const RandomWaypointParams& params_;
  Rng rng_;
  Position position_;
  Position waypoint_;
  double speed_ = 0.0;      // m/s toward waypoint
  Duration pauseLeft_ = 0;  // remaining pause at current waypoint
};

/// Generates the pairwise contact trace by simulating the walkers.
[[nodiscard]] ContactTrace generateRandomWaypoint(
    const RandomWaypointParams& params);

/// Distance helper.
[[nodiscard]] double distance(const Position& a, const Position& b);

}  // namespace hdtn::trace
