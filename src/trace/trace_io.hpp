// Plain-text contact-trace serialization.
//
// Format (one record per line, '#' comments allowed):
//   trace <name> <node-count>
//   c <start-seconds> <end-seconds> <id> <id> [<id> ...]
// The `trace` header is optional; node count is inferred when absent. When
// present it must come first, appear once, and every member id must lie
// inside the declared universe — violations are line-numbered parse errors.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "src/trace/contact_trace.hpp"

namespace hdtn::trace {

/// Serializes the trace. Contacts are written in current order.
void writeTrace(const ContactTrace& trace, std::ostream& os);

/// Parses a trace; returns std::nullopt and sets `error` on malformed input.
[[nodiscard]] std::optional<ContactTrace> readTrace(std::istream& is,
                                                    std::string* error);

/// File convenience wrappers.
bool saveTraceFile(const ContactTrace& trace, const std::string& path,
                   std::string* error);
[[nodiscard]] std::optional<ContactTrace> loadTraceFile(
    const std::string& path, std::string* error);

/// Parses the ONE simulator's connectivity event format, one event per
/// line:
///   <time> CONN <id-a> <id-b> up
///   <time> CONN <id-a> <id-b> down
/// A contact opens at the `up` event and closes at the matching `down`;
/// pairs still up at the end of input are closed at the last event time
/// plus one second. Unmatched `down` events are ignored (truncated logs).
[[nodiscard]] std::optional<ContactTrace> readOneTrace(std::istream& is,
                                                       std::string* error);

}  // namespace hdtn::trace
