// Synthetic UMassDieselNet-style vehicular trace generator.
//
// The real UMassDieselNet trace (Burgess et al., INFOCOM'06) is a log of
// pairwise radio contacts between ~40 transit buses in Amherst, MA. The raw
// trace is not redistributable here, so we synthesize a bus network with the
// two properties the paper's evaluation actually depends on:
//   1. contacts are strictly pairwise (buses meet on the road / at hubs);
//   2. there is a meaningful "frequent contact" relation — buses serving the
//      same or connecting routes meet at least every 3 days, others rarely.
// Meetings are Poisson within each bus's daily operating window; same-route
// pairs meet at a high rate, pairs on routes sharing a transfer hub at a
// medium rate, and unrelated pairs at a low background rate, giving the
// heavy-tailed inter-contact distribution reported for DieselNet.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "src/trace/contact_trace.hpp"
#include "src/util/random.hpp"

namespace hdtn::trace {

struct DieselNetParams {
  int buses = 40;
  int routes = 8;
  int days = 20;
  /// Expected meetings per day for two buses on the same route.
  double sameRouteMeetingsPerDay = 2.0;
  /// Expected meetings per day for buses on routes sharing a transfer hub.
  double connectedRouteMeetingsPerDay = 0.6;
  /// Background rate for unrelated bus pairs (chance road encounters).
  double backgroundMeetingsPerDay = 0.04;
  /// Mean contact duration in seconds (exponential, min 5 s).
  double meanContactDuration = 90.0;
  /// Buses operate between these hours each day.
  SimTime dayStart = 6 * kHour;
  SimTime dayEnd = 22 * kHour;
  std::uint64_t seed = 1;
};

/// Generates the synthetic trace. Bus ids are [0, buses); bus b serves route
/// b % routes; route r connects (shares a hub) with routes r±1 (mod routes).
[[nodiscard]] ContactTrace generateDieselNet(const DieselNetParams& params);

/// Route served by a bus under the generator's assignment rule.
[[nodiscard]] int dieselNetRouteOf(const DieselNetParams& params, NodeId bus);

/// Parses a DieselNet-style meeting log, one pairwise meeting per line
/// ('#' comments and blank lines allowed):
///   <bus-a> <bus-b> <start-seconds> <duration-seconds> [<bytes>]
/// The optional trailing byte count (present in the published UMass logs) is
/// ignored. Sub-second meetings are rounded up to one second. Malformed
/// lines — bad fields, a bus meeting itself, negative start, non-positive
/// duration — fail with a line-numbered error and return std::nullopt.
[[nodiscard]] std::optional<ContactTrace> readDieselNetLog(
    std::istream& is, std::string* error);

/// Parses one line of the meeting-log format into `out`. The single
/// building block behind both readDieselNetLog and the streaming reader
/// (trace/streaming.hpp). On kError, `why` receives the reason (without the
/// line number).
[[nodiscard]] LineParse parseDieselNetLine(std::string_view line, Contact* out,
                                           std::string* why);

}  // namespace hdtn::trace
