#include "src/trace/nus.hpp"

#include <algorithm>
#include <cassert>
#include <istream>
#include <sstream>

#include "src/util/string_util.hpp"

namespace hdtn::trace {

NusSchedule buildNusSchedule(const NusParams& params) {
  assert(params.students >= 2);
  assert(params.courses >= 1);
  assert(params.coursesPerStudent >= 1);
  assert(params.coursesPerStudent <= params.courses);
  assert(params.sessionsPerCourseDay >= 1);
  assert(params.dayEnd > params.dayStart);

  // Schedule structure must not depend on attendanceRate, so derive its rng
  // purely from the seed.
  Rng rng(params.seed ^ 0xabcdef1234567890ull);
  NusSchedule schedule;
  schedule.enrollment.resize(static_cast<std::size_t>(params.courses));
  schedule.sessionStart.resize(static_cast<std::size_t>(params.courses));

  // Enrollment: each student picks coursesPerStudent distinct courses.
  std::vector<int> allCourses(static_cast<std::size_t>(params.courses));
  for (int c = 0; c < params.courses; ++c) {
    allCourses[static_cast<std::size_t>(c)] = c;
  }
  for (std::uint32_t s = 0; s < static_cast<std::uint32_t>(params.students);
       ++s) {
    rng.shuffle(allCourses);
    for (int k = 0; k < params.coursesPerStudent; ++k) {
      schedule.enrollment[static_cast<std::size_t>(allCourses[(std::size_t)k])]
          .emplace_back(s);
    }
  }
  for (auto& roster : schedule.enrollment) {
    std::sort(roster.begin(), roster.end());
  }

  // Session slots: on-the-hour starts such that the session fits the day.
  const SimTime lastSlot = params.dayEnd - params.sessionDuration;
  const auto slotCount =
      static_cast<std::int64_t>((lastSlot - params.dayStart) / kHour) + 1;
  assert(slotCount >= 1);
  for (int c = 0; c < params.courses; ++c) {
    auto& starts = schedule.sessionStart[static_cast<std::size_t>(c)];
    for (int k = 0; k < params.sessionsPerCourseDay; ++k) {
      const auto slot = rng.uniformInt(0, slotCount - 1);
      starts.push_back(params.dayStart + slot * kHour);
    }
    std::sort(starts.begin(), starts.end());
  }
  return schedule;
}

ContactTrace generateNus(const NusParams& params) {
  return generateNus(params, buildNusSchedule(params));
}

ContactTrace generateNus(const NusParams& params,
                         const NusSchedule& schedule) {
  assert(schedule.enrollment.size() ==
         static_cast<std::size_t>(params.courses));
  ContactTrace out("nus", static_cast<std::size_t>(params.students));
  Rng rng(params.seed ^ 0x5eed5eed5eed5eedull);

  for (int day = 0; day < params.days; ++day) {
    const SimTime dayBase = static_cast<SimTime>(day) * kDay;
    for (int c = 0; c < params.courses; ++c) {
      const auto& roster = schedule.enrollment[static_cast<std::size_t>(c)];
      for (SimTime start : schedule.sessionStart[static_cast<std::size_t>(c)]) {
        Contact contact;
        contact.start = dayBase + start;
        contact.end = contact.start + params.sessionDuration;
        for (NodeId student : roster) {
          if (rng.chance(params.attendanceRate)) {
            contact.members.push_back(student);
          }
        }
        // addContact rejects sessions with fewer than two attendees.
        out.addContact(std::move(contact));
      }
    }
  }
  out.sortByStart();
  return out;
}

LineParse parseNusSessionLine(std::string_view line, Contact* out,
                              std::string* why) {
  const std::string_view body = trim(line);
  if (body.empty() || body.front() == '#') return LineParse::kBlank;
  auto fail = [&](std::string reason) {
    if (why != nullptr) *why = std::move(reason);
    return LineParse::kError;
  };
  std::istringstream fields{std::string(body)};
  long long day = 0;
  double offset = 0.0, duration = 0.0;
  if (!(fields >> day >> offset >> duration)) {
    return fail("malformed session record (want: <day> "
                "<start-offset-seconds> <duration-seconds> <student> ...)");
  }
  if (day < 0) return fail("negative day index");
  if (offset < 0.0 || offset >= static_cast<double>(kDay)) {
    return fail("session start offset is outside the day "
                "(0 <= offset < 86400)");
  }
  if (duration <= 0.0) return fail("non-positive session duration");
  std::uint32_t id = 0;
  Contact c;
  while (fields >> id) c.members.emplace_back(id);
  if (!fields.eof()) return fail("malformed student id");
  if (c.members.empty()) return fail("session lists no attendees");
  c.start = static_cast<SimTime>(day) * kDay + static_cast<SimTime>(offset);
  c.end = c.start + static_cast<Duration>(duration);
  if (c.end <= c.start) c.end = c.start + 1;
  *out = std::move(c);
  return LineParse::kContact;
}

std::optional<ContactTrace> readNusSessions(std::istream& is,
                                            std::string* error) {
  ContactTrace trace("nus-import", 0);
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(is, line)) {
    ++lineNo;
    Contact c;
    std::string why;
    switch (parseNusSessionLine(line, &c, &why)) {
      case LineParse::kBlank:
        break;
      case LineParse::kError:
        if (error != nullptr) {
          *error = "line " + std::to_string(lineNo) + ": " + why;
        }
        return std::nullopt;
      case LineParse::kContact:
        // A one-student session is well-formed input but produces no
        // contact, matching the generator.
        trace.addContact(std::move(c));
        break;
    }
  }
  trace.sortByStart();
  return trace;
}

}  // namespace hdtn::trace
