#include "src/trace/contact_trace.hpp"

#include <algorithm>

namespace hdtn::trace {

ContactTrace::ContactTrace(std::string name, std::size_t nodeCount)
    : name_(std::move(name)), nodeCount_(nodeCount) {}

bool ContactTrace::addContact(Contact contact) {
  std::sort(contact.members.begin(), contact.members.end());
  contact.members.erase(
      std::unique(contact.members.begin(), contact.members.end()),
      contact.members.end());
  if (contact.members.size() < 2) return false;
  if (contact.end <= contact.start) return false;
  for (NodeId m : contact.members) {
    if (m.value >= nodeCount_) nodeCount_ = m.value + 1;
  }
  contacts_.push_back(std::move(contact));
  return true;
}

void ContactTrace::sortByStart() {
  std::sort(contacts_.begin(), contacts_.end(),
            [](const Contact& a, const Contact& b) {
              if (a.start != b.start) return a.start < b.start;
              if (a.end != b.end) return a.end < b.end;
              return a.members < b.members;
            });
}

SimTime ContactTrace::endTime() const {
  SimTime latest = 0;
  for (const Contact& c : contacts_) latest = std::max(latest, c.end);
  return latest;
}

bool ContactTrace::isPairwiseOnly() const {
  return std::all_of(contacts_.begin(), contacts_.end(),
                     [](const Contact& c) { return c.isPairwise(); });
}

std::vector<NodeId> ContactTrace::allNodes() const {
  std::vector<NodeId> out;
  out.reserve(nodeCount_);
  for (std::uint32_t i = 0; i < nodeCount_; ++i) out.emplace_back(i);
  return out;
}

ContactTrace ContactTrace::slice(SimTime from, SimTime to) const {
  ContactTrace out(name_ + "-slice", nodeCount_);
  for (const Contact& c : contacts_) {
    if (c.end <= from || c.start >= to) continue;
    Contact clipped = c;
    clipped.start = std::max(c.start, from);
    clipped.end = std::min(c.end, to);
    out.addContact(std::move(clipped));
  }
  out.sortByStart();
  return out;
}

}  // namespace hdtn::trace
