// Deterministic fault injection for simulation runs.
//
// The paper's evaluation drives the protocols over clean traces, but the
// premise of store-carry-forward — an unreliable, intermittent edge — only
// bites when transmissions fail. This subsystem models four fault classes:
//
//   * message loss        — a broadcast frame misses one receiver;
//   * contact truncation  — a contact ends early, shrinking its budgets;
//   * piece corruption    — a piece payload arrives damaged and is caught
//                           by the SHA-1 piece checksum carried in the
//                           metadata (the paper's field (e)), so the
//                           receiver drops it and re-requests later;
//   * node churn          — a node is switched off for whole intervals
//                           during which it neither transmits nor receives.
//
// Determinism: a FaultPlan is seeded from the engine's RNG stream
// (Rng::fork), and every fault class draws from its *own* forked child
// stream, so runs stay byte-identical per seed and enabling one fault class
// never perturbs the decisions of another. Churn down-intervals are fully
// precomputed at construction; loss/truncation/corruption draws happen in
// simulation-event execution order, which the engine guarantees is the same
// for run(), runUntil(), and step() drives. With every rate at zero the
// engine does not construct a plan at all (FaultParams::enabled() is
// false): the clean path draws nothing and stays byte-identical to a build
// without fault support.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/random.hpp"
#include "src/util/serialize.hpp"
#include "src/util/types.hpp"

namespace hdtn::faults {

/// Which fault class fired; carried in the `extra` field of
/// obs::SimEventType::kFaultInjected events.
enum class FaultKind : std::uint32_t {
  kMessageLoss = 1,
  kContactTruncation = 2,
  kPieceCorruption = 3,
  kNodeChurn = 4,
};

/// Stable snake_case name (JSONL consumers, docs).
[[nodiscard]] const char* faultKindName(FaultKind kind);

struct FaultParams {
  /// Probability that one deliverable message (a metadata record or a
  /// piece, per receiver) is lost inside a DTN contact.
  double messageLossRate = 0.0;
  /// Probability that a contact is truncated. A truncated contact keeps a
  /// uniform fraction of its per-contact budgets drawn from
  /// [truncationKeepMin, truncationKeepMax].
  double contactTruncationRate = 0.0;
  double truncationKeepMin = 0.2;
  double truncationKeepMax = 0.8;
  /// Probability that a received piece is corrupted in flight. Corrupt
  /// pieces fail the SHA-1 checksum carried in the held metadata, never
  /// enter the PieceStore, and are re-requested at later contacts.
  double pieceCorruptionRate = 0.0;
  /// Long-run fraction of time each node spends switched off (churn).
  /// Down/up intervals alternate with exponentially distributed lengths.
  double churnDownFraction = 0.0;
  /// Mean length of one down interval (seconds).
  Duration churnMeanDowntime = 6 * kHour;

  /// True when any fault class can fire. The engine only constructs (and
  /// seeds) a FaultPlan for enabled params, so an all-zero configuration
  /// is byte-identical to a run without fault support.
  [[nodiscard]] bool enabled() const;

  /// One descriptive message per violation (empty when valid): rates in
  /// [0, 1], churnDownFraction in [0, 1), keep bounds ordered inside
  /// [0, 1], positive mean downtime when churn is on.
  [[nodiscard]] std::vector<std::string> validate() const;
};

/// The materialized fault schedule of one run. Query methods that model
/// channel noise (contactKeepFactor, dropMessage, corruptPiece) consume
/// draws and must be called in simulation order; churn queries are pure
/// lookups into the precomputed interval table.
class FaultPlan {
 public:
  struct DownInterval {
    SimTime start = 0;
    SimTime end = 0;  ///< exclusive; clamped to the run horizon
  };

  /// `rng` must be forked off the engine stream; `horizon` bounds churn
  /// interval generation (normally the trace end time).
  FaultPlan(const FaultParams& params, Rng rng, std::size_t nodeCount,
            SimTime horizon);

  [[nodiscard]] const FaultParams& params() const { return params_; }

  /// Fraction of the contact's budgets that survives: 1.0 when the contact
  /// is not truncated, otherwise uniform in [keepMin, keepMax]. One draw
  /// per processed contact.
  [[nodiscard]] double contactKeepFactor();

  /// True when the next deliverable message is lost. One draw per
  /// deliverable (message, receiver) pair; no draw when the rate is zero.
  [[nodiscard]] bool dropMessage();

  /// True when the next received piece is corrupted (and will be rejected
  /// by its checksum). No draw when the rate is zero.
  [[nodiscard]] bool corruptPiece();

  /// True when `node` is inside one of its precomputed down intervals.
  [[nodiscard]] bool isDown(NodeId node, SimTime now) const;

  /// Precomputed down intervals of `node`, ascending; empty without churn.
  [[nodiscard]] const std::vector<DownInterval>& downIntervals(
      NodeId node) const;

  /// Total down intervals across all nodes (scheduling, tests).
  [[nodiscard]] std::size_t totalDownIntervals() const {
    return totalDownIntervals_;
  }

  /// Checkpoints the consumable state: the three channel stream positions.
  /// Params and churn intervals are reconstructed deterministically by the
  /// constructor and are not serialized.
  void saveState(Serializer& out) const;
  void loadState(Deserializer& in);

 private:
  FaultParams params_;
  Rng truncationRng_;
  Rng lossRng_;
  Rng corruptionRng_;
  std::vector<std::vector<DownInterval>> down_;
  std::size_t totalDownIntervals_ = 0;
};

}  // namespace hdtn::faults
