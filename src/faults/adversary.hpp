// Deterministic Byzantine adversaries for simulation runs.
//
// The random fault classes in faults.hpp model an unreliable channel; this
// subsystem models nodes that lie on purpose. A configurable fraction of
// the non-access population turns Byzantine and mounts typed attacks:
//
//   * coded-frame pollution — a Byzantine sender emits well-formed coded
//     frames whose coefficients/payload are junk. One polluted frame folded
//     into a Gauss-Jordan decoder poisons the whole generation (the classic
//     network-coding pollution attack);
//   * piece lies           — a Byzantine sender replaces a named piece's
//     payload and forges the accompanying checksum; the receiver's SHA-1
//     verification against the *held metadata* still catches it, but the
//     transfer slot is burnt;
//   * false summaries      — a Byzantine receiver advertises an empty Bloom
//     summary during anti-entropy repair, soliciting pushes of data it
//     already holds and burning the repair budget;
//   * ack spoofing         — a Byzantine member injects bogus loss reports
//     into the retransmission queue, starving the per-contact retransmit
//     budget with redeliveries of frames nobody lost;
//   * coordinator abuse    — a Byzantine clique coordinator silently drops
//     a fraction of the broadcasts the download planner scheduled.
//
// Determinism follows the fault-plan discipline exactly: the engine forks
// one adversary stream off its root RNG only when the adversary is enabled,
// and every attack class draws from its own forked child stream, so runs
// stay byte-identical per seed, enabling one attack never perturbs another,
// and a disabled adversary is byte-identical to a build without adversary
// support. Byzantine membership is chosen by the engine from the same role
// shuffle that assigns access nodes, free-riders, and forgers — it consumes
// no extra draws and is reconstructed (not serialized) on resume.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/random.hpp"
#include "src/util/serialize.hpp"
#include "src/util/types.hpp"

namespace hdtn::faults {

/// Which attack fired; carried in the `extra` field of
/// obs::SimEventType::kAttackInjected events. Values are single bits so a
/// set of enabled attacks is a plain mask.
enum class AttackKind : std::uint32_t {
  kPollution = 1u << 0,
  kPieceLie = 1u << 1,
  kFalseSummary = 1u << 2,
  kAckSpoof = 1u << 3,
  kCoordinator = 1u << 4,
};

/// Every attack bit set (the default attack mask).
inline constexpr std::uint32_t kAllAttacks =
    static_cast<std::uint32_t>(AttackKind::kPollution) |
    static_cast<std::uint32_t>(AttackKind::kPieceLie) |
    static_cast<std::uint32_t>(AttackKind::kFalseSummary) |
    static_cast<std::uint32_t>(AttackKind::kAckSpoof) |
    static_cast<std::uint32_t>(AttackKind::kCoordinator);

/// Stable kebab-case name (scenario knob values, JSONL consumers, docs).
[[nodiscard]] const char* attackKindName(AttackKind kind);

/// Parses a comma-separated attack list ("pollution,ack-spoof", or "all")
/// into a mask. Returns false and leaves *mask untouched on an unknown
/// name; *error (optional) receives the offending token.
[[nodiscard]] bool parseAttackMask(const std::string& text,
                                   std::uint32_t* mask,
                                   std::string* error = nullptr);

/// Renders a mask back into the canonical comma-separated list ("all" when
/// every bit is set, "none" when empty). Round-trips with parseAttackMask.
[[nodiscard]] std::string attackMaskName(std::uint32_t mask);

struct AdversaryParams {
  /// Fraction of the *non-access* population that turns Byzantine.
  /// Byzantine nodes are drawn from honest (non-free-riding, non-forging)
  /// non-access nodes, so the adversary composes with the paper's existing
  /// misbehavior models instead of overlapping them.
  double byzantineFraction = 0.0;
  /// Mask of enabled AttackKind bits (default: all attacks).
  std::uint32_t attacks = kAllAttacks;

  /// True when any Byzantine node can exist and act. The engine only
  /// constructs (and seeds) an AdversaryPlan for enabled params, so the
  /// defaults are byte-identical to a run without adversary support.
  [[nodiscard]] bool enabled() const {
    return byzantineFraction > 0.0 && attacks != 0;
  }

  /// One descriptive message per violation (empty when valid):
  /// byzantineFraction in [0, 1], attacks within the known mask.
  [[nodiscard]] std::vector<std::string> validate() const;
};

/// The materialized adversary of one run: who is Byzantine, and the
/// per-attack decision streams. Decision methods consume draws and must be
/// called in simulation order (the same discipline as FaultPlan's channel
/// queries); membership queries are pure bitmap lookups.
class AdversaryPlan {
 public:
  /// `rng` must be forked off the engine stream.
  AdversaryPlan(const AdversaryParams& params, Rng rng);

  [[nodiscard]] const AdversaryParams& params() const { return params_; }

  /// Installs the Byzantine membership chosen by the engine's role shuffle.
  /// Deterministic per seed; called once from setup and again on resume.
  void setByzantine(const std::vector<NodeId>& nodes, std::size_t nodeCount);

  [[nodiscard]] bool isByzantine(NodeId node) const {
    return node.value < byzantine_.size() && byzantine_[node.value] != 0;
  }
  [[nodiscard]] std::size_t byzantineCount() const { return byzantineCount_; }

  [[nodiscard]] bool attackEnabled(AttackKind kind) const {
    return (params_.attacks & static_cast<std::uint32_t>(kind)) != 0;
  }

  /// True when a Byzantine sender pollutes the next coded frame it emits.
  /// One draw per Byzantine-sent coded frame.
  [[nodiscard]] bool pollutesFrame();

  /// True when a Byzantine sender lies about the next named piece it was
  /// scheduled to send. One draw per Byzantine-sent piece transfer.
  [[nodiscard]] bool liesAboutPiece();

  /// True when a Byzantine repair receiver forges (empties) its next Bloom
  /// summary. One draw per Byzantine repair-round participation.
  [[nodiscard]] bool forgesSummary();

  /// Number of bogus loss reports a Byzantine member injects into this
  /// contact's retransmission queue (0–3). One draw per Byzantine member
  /// per recovering contact.
  [[nodiscard]] std::uint32_t spoofedAckClaims();

  /// True when a Byzantine coordinator silently drops the next planned
  /// broadcast. One draw per planned broadcast under a Byzantine
  /// coordinator.
  [[nodiscard]] bool dropsPlannedBroadcast();

  /// Checkpoints the consumable state: the five attack stream positions.
  /// Params and Byzantine membership are reconstructed deterministically
  /// and are not serialized.
  void saveState(Serializer& out) const;
  void loadState(Deserializer& in);

 private:
  AdversaryParams params_;
  Rng pollutionRng_;
  Rng pieceLieRng_;
  Rng summaryRng_;
  Rng ackSpoofRng_;
  Rng coordinatorRng_;
  std::vector<std::uint8_t> byzantine_;
  std::size_t byzantineCount_ = 0;
};

}  // namespace hdtn::faults
