#include "src/faults/adversary.hpp"

#include <array>

namespace hdtn::faults {

namespace {

// Distinct fork salts so every attack class owns an independent stream:
// enabling ack spoofing can never change which coded frames get polluted.
constexpr std::uint64_t kPollutionSalt = 1;
constexpr std::uint64_t kPieceLieSalt = 2;
constexpr std::uint64_t kSummarySalt = 3;
constexpr std::uint64_t kAckSpoofSalt = 4;
constexpr std::uint64_t kCoordinatorSalt = 5;

// Per-opportunity attack probabilities. Byzantine nodes are aggressive but
// not perfectly so — an attacker that defects on every opportunity is
// trivially fingerprinted; these rates are high enough to collapse an
// undefended run while leaving honest-looking gaps.
constexpr double kPollutionRate = 0.75;
constexpr double kPieceLieRate = 0.75;
constexpr double kFalseSummaryRate = 0.8;
constexpr double kBroadcastDropRate = 0.5;
constexpr std::uint32_t kMaxSpoofedClaims = 3;

struct AttackName {
  AttackKind kind;
  const char* name;
};

constexpr AttackName kAttackNames[] = {
    {AttackKind::kPollution, "pollution"},
    {AttackKind::kPieceLie, "piece-lie"},
    {AttackKind::kFalseSummary, "false-summary"},
    {AttackKind::kAckSpoof, "ack-spoof"},
    {AttackKind::kCoordinator, "coordinator"},
};

}  // namespace

const char* attackKindName(AttackKind kind) {
  for (const AttackName& entry : kAttackNames) {
    if (entry.kind == kind) return entry.name;
  }
  return "unknown";
}

bool parseAttackMask(const std::string& text, std::uint32_t* mask,
                     std::string* error) {
  std::uint32_t out = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    // Trim surrounding spaces so "pollution, ack-spoof" parses.
    std::size_t begin = pos, end = comma;
    while (begin < end && text[begin] == ' ') ++begin;
    while (end > begin && text[end - 1] == ' ') --end;
    const std::string token = text.substr(begin, end - begin);
    pos = comma + 1;
    if (token.empty()) {
      if (comma == text.size()) break;
      continue;
    }
    if (token == "all") {
      out |= kAllAttacks;
      continue;
    }
    if (token == "none") continue;
    bool found = false;
    for (const AttackName& entry : kAttackNames) {
      if (token == entry.name) {
        out |= static_cast<std::uint32_t>(entry.kind);
        found = true;
        break;
      }
    }
    if (!found) {
      if (error) *error = token;
      return false;
    }
  }
  *mask = out;
  return true;
}

std::string attackMaskName(std::uint32_t mask) {
  if (mask == 0) return "none";
  if ((mask & kAllAttacks) == kAllAttacks) return "all";
  std::string out;
  for (const AttackName& entry : kAttackNames) {
    if ((mask & static_cast<std::uint32_t>(entry.kind)) == 0) continue;
    if (!out.empty()) out += ',';
    out += entry.name;
  }
  return out;
}

std::vector<std::string> AdversaryParams::validate() const {
  std::vector<std::string> errors;
  if (!(byzantineFraction >= 0.0 && byzantineFraction <= 1.0)) {
    errors.push_back("byzantineFraction must be in [0, 1], got " +
                     std::to_string(byzantineFraction));
  }
  if ((attacks & ~kAllAttacks) != 0) {
    errors.push_back("attacks mask has unknown bits set: " +
                     std::to_string(attacks & ~kAllAttacks));
  }
  return errors;
}

AdversaryPlan::AdversaryPlan(const AdversaryParams& params, Rng rng)
    : params_(params),
      pollutionRng_(rng.fork(kPollutionSalt)),
      pieceLieRng_(rng.fork(kPieceLieSalt)),
      summaryRng_(rng.fork(kSummarySalt)),
      ackSpoofRng_(rng.fork(kAckSpoofSalt)),
      coordinatorRng_(rng.fork(kCoordinatorSalt)) {}

void AdversaryPlan::setByzantine(const std::vector<NodeId>& nodes,
                                 std::size_t nodeCount) {
  byzantine_.assign(nodeCount, 0);
  byzantineCount_ = 0;
  for (NodeId node : nodes) {
    if (node.value >= byzantine_.size()) continue;
    if (byzantine_[node.value] == 0) ++byzantineCount_;
    byzantine_[node.value] = 1;
  }
}

bool AdversaryPlan::pollutesFrame() {
  return pollutionRng_.chance(kPollutionRate);
}

bool AdversaryPlan::liesAboutPiece() {
  return pieceLieRng_.chance(kPieceLieRate);
}

bool AdversaryPlan::forgesSummary() {
  return summaryRng_.chance(kFalseSummaryRate);
}

std::uint32_t AdversaryPlan::spoofedAckClaims() {
  return static_cast<std::uint32_t>(
      ackSpoofRng_.pickIndex(kMaxSpoofedClaims + 1));
}

bool AdversaryPlan::dropsPlannedBroadcast() {
  return coordinatorRng_.chance(kBroadcastDropRate);
}

namespace {

void saveRng(Serializer& out, const Rng& rng) {
  for (std::uint64_t word : rng.state()) out.u64(word);
}

void loadRng(Deserializer& in, Rng& rng) {
  std::array<std::uint64_t, 4> state;
  for (std::uint64_t& word : state) word = in.u64();
  rng.setState(state);
}

}  // namespace

void AdversaryPlan::saveState(Serializer& out) const {
  saveRng(out, pollutionRng_);
  saveRng(out, pieceLieRng_);
  saveRng(out, summaryRng_);
  saveRng(out, ackSpoofRng_);
  saveRng(out, coordinatorRng_);
}

void AdversaryPlan::loadState(Deserializer& in) {
  loadRng(in, pollutionRng_);
  loadRng(in, pieceLieRng_);
  loadRng(in, summaryRng_);
  loadRng(in, ackSpoofRng_);
  loadRng(in, coordinatorRng_);
}

}  // namespace hdtn::faults
