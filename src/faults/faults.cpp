#include "src/faults/faults.hpp"

#include <algorithm>
#include <cmath>

namespace hdtn::faults {

namespace {

// Distinct fork salts so every fault class owns an independent stream:
// enabling corruption can never change which messages drop or when a node
// churns off.
constexpr std::uint64_t kTruncationSalt = 1;
constexpr std::uint64_t kLossSalt = 2;
constexpr std::uint64_t kCorruptionSalt = 3;
constexpr std::uint64_t kChurnSalt = 4;

bool isFraction(double v) { return v >= 0.0 && v <= 1.0; }

}  // namespace

const char* faultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kMessageLoss:
      return "message_loss";
    case FaultKind::kContactTruncation:
      return "contact_truncation";
    case FaultKind::kPieceCorruption:
      return "piece_corruption";
    case FaultKind::kNodeChurn:
      return "node_churn";
  }
  return "unknown";
}

bool FaultParams::enabled() const {
  return messageLossRate > 0.0 || contactTruncationRate > 0.0 ||
         pieceCorruptionRate > 0.0 || churnDownFraction > 0.0;
}

std::vector<std::string> FaultParams::validate() const {
  std::vector<std::string> errors;
  const auto fraction = [&errors](const char* name, double v) {
    if (!isFraction(v)) {
      errors.push_back(std::string(name) + " must be in [0, 1], got " +
                       std::to_string(v));
    }
  };
  fraction("messageLossRate", messageLossRate);
  fraction("contactTruncationRate", contactTruncationRate);
  fraction("pieceCorruptionRate", pieceCorruptionRate);
  if (!(churnDownFraction >= 0.0 && churnDownFraction < 1.0)) {
    errors.push_back("churnDownFraction must be in [0, 1), got " +
                     std::to_string(churnDownFraction));
  }
  if (!isFraction(truncationKeepMin) || !isFraction(truncationKeepMax) ||
      truncationKeepMin > truncationKeepMax) {
    errors.push_back(
        "truncationKeepMin/truncationKeepMax must satisfy 0 <= min <= max "
        "<= 1, got [" +
        std::to_string(truncationKeepMin) + ", " +
        std::to_string(truncationKeepMax) + "]");
  }
  if (churnDownFraction > 0.0 && churnMeanDowntime <= 0) {
    errors.push_back(
        "churnMeanDowntime must be positive seconds when churnDownFraction "
        "is set, got " +
        std::to_string(churnMeanDowntime));
  }
  return errors;
}

FaultPlan::FaultPlan(const FaultParams& params, Rng rng,
                     std::size_t nodeCount, SimTime horizon)
    : params_(params),
      truncationRng_(rng.fork(kTruncationSalt)),
      lossRng_(rng.fork(kLossSalt)),
      corruptionRng_(rng.fork(kCorruptionSalt)) {
  const double f = params_.churnDownFraction;
  if (f <= 0.0 || nodeCount == 0 || horizon <= 0) return;
  // Alternating renewal process per node: up ~ Exp(meanUp),
  // down ~ Exp(meanDown), with meanUp chosen so the long-run down fraction
  // is churnDownFraction.
  Rng churnRng = rng.fork(kChurnSalt);
  const double meanDown = static_cast<double>(params_.churnMeanDowntime);
  const double meanUp = meanDown * (1.0 - f) / f;
  down_.resize(nodeCount);
  for (auto& intervals : down_) {
    double t = churnRng.exponential(meanUp);
    while (t < static_cast<double>(horizon)) {
      const double len = std::max(1.0, churnRng.exponential(meanDown));
      const SimTime start = static_cast<SimTime>(t);
      const SimTime end =
          std::min<SimTime>(horizon, start + static_cast<SimTime>(len));
      if (end > start) {
        intervals.push_back({start, end});
        ++totalDownIntervals_;
      }
      t = static_cast<double>(end) + churnRng.exponential(meanUp);
    }
  }
}

double FaultPlan::contactKeepFactor() {
  if (params_.contactTruncationRate <= 0.0) return 1.0;
  if (!truncationRng_.chance(params_.contactTruncationRate)) return 1.0;
  return truncationRng_.uniform(params_.truncationKeepMin,
                                params_.truncationKeepMax);
}

bool FaultPlan::dropMessage() {
  if (params_.messageLossRate <= 0.0) return false;
  return lossRng_.chance(params_.messageLossRate);
}

bool FaultPlan::corruptPiece() {
  if (params_.pieceCorruptionRate <= 0.0) return false;
  return corruptionRng_.chance(params_.pieceCorruptionRate);
}

bool FaultPlan::isDown(NodeId node, SimTime now) const {
  if (node.value >= down_.size()) return false;
  const auto& intervals = down_[node.value];
  // Last interval starting at or before `now`.
  auto it = std::upper_bound(
      intervals.begin(), intervals.end(), now,
      [](SimTime t, const DownInterval& iv) { return t < iv.start; });
  if (it == intervals.begin()) return false;
  --it;
  return now < it->end;
}

namespace {

void saveRng(Serializer& out, const Rng& rng) {
  for (std::uint64_t word : rng.state()) out.u64(word);
}

void loadRng(Deserializer& in, Rng& rng) {
  std::array<std::uint64_t, 4> state;
  for (std::uint64_t& word : state) word = in.u64();
  rng.setState(state);
}

}  // namespace

void FaultPlan::saveState(Serializer& out) const {
  saveRng(out, truncationRng_);
  saveRng(out, lossRng_);
  saveRng(out, corruptionRng_);
}

void FaultPlan::loadState(Deserializer& in) {
  loadRng(in, truncationRng_);
  loadRng(in, lossRng_);
  loadRng(in, corruptionRng_);
}

const std::vector<FaultPlan::DownInterval>& FaultPlan::downIntervals(
    NodeId node) const {
  static const std::vector<DownInterval> kEmpty;
  if (node.value >= down_.size()) return kEmpty;
  return down_[node.value];
}

}  // namespace hdtn::faults
