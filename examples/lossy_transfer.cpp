// Byte-level file transfer over a lossy radio, with encryption-based
// choking (the paper's future-work extension).
//
// Two devices speak the wire protocol across a channel that drops and
// corrupts frames. The seeder chokes: pieces are broadcast encrypted, and
// the decryption keys are released only after the leecher has earned
// credit. SHA-1 checksums catch every corruption; the transfer still
// completes.
//
//   ./build/examples/lossy_transfer
#include <cstdio>

#include "src/core/choke.hpp"
#include "src/core/internet.hpp"
#include "src/net/device.hpp"

using namespace hdtn;

int main() {
  core::InternetServices internet;
  core::FileCatalog::PublishRequest req;
  req.name = "fox science special ep0";
  req.publisher = "fox";
  req.description = "deep sea documentary";
  req.sizeBytes = 32 * 1024;
  req.pieceSizeBytes = 1024;  // 32 pieces
  req.popularity = 0.6;
  req.publishedAt = 0;
  req.ttl = 10 * kDay;
  const FileId file = internet.publish(req);
  const core::Metadata& md = internet.catalog().metadataFor(file);

  net::Device seeder(NodeId(1), {});
  seeder.node().acceptMetadata(md, 0);
  for (std::uint32_t p = 0; p < md.pieceCount(); ++p) {
    seeder.node().acceptPiece(file, p, md.pieceCount(), 0);
  }
  net::Device leecher(NodeId(2), {}, &internet.registry());

  net::LossyLink radio(/*dropRate=*/0.2, /*corruptRate=*/0.3, Rng(11));
  std::printf("radio: 20%% frame loss, 30%% corruption\n");

  // 1. Metadata crosses the radio (verified against the registry).
  SimTime now = 1;
  while (!leecher.node().metadata().has(file)) {
    if (const auto frame = radio.transfer(*seeder.makeMetadataFrame(file))) {
      leecher.receive(*frame, now);
    }
    ++now;
  }
  std::printf("metadata delivered and verified after %lld beacons\n",
              static_cast<long long>(now - 1));

  // 2. Plain piece transfer with naive ARQ for the first half of the file:
  // drops force retransmission, corruptions are caught by the checksums.
  const std::uint32_t half = md.pieceCount() / 2;
  int rounds = 0;
  while (leecher.node().pieces().piecesHeld(file) < half) {
    ++rounds;
    for (std::uint32_t p = 0; p < half; ++p) {
      if (leecher.node().pieces().hasPiece(file, p)) continue;
      const auto frame =
          seeder.makePieceFrame(internet.catalog(), file, p);
      if (const auto rx = radio.transfer(*frame)) {
        leecher.receive(*rx, ++now);
      }
    }
  }
  std::printf(
      "pieces 0-%u transferred in %d ARQ rounds: %llu frames dropped, "
      "%llu corrupted (every corruption caught: %llu checksum rejections, "
      "%llu unparseable)\n",
      half - 1, rounds, static_cast<unsigned long long>(radio.dropped()),
      static_cast<unsigned long long>(radio.corrupted()),
      static_cast<unsigned long long>(
          leecher.outcomeCount(net::RxOutcome::kPieceCorrupt)),
      static_cast<unsigned long long>(
          leecher.outcomeCount(net::RxOutcome::kMalformed)));

  // 3. Choked distribution for the second half: ciphertext is broadcast
  // freely...
  core::KeyEscrow escrow("seeder-secret", /*minimumCredit=*/5.0);
  core::CipherVault vault;
  core::CreditLedger seederLedger;  // the seeder's view of its peers
  const core::FileInfo& info = *internet.catalog().find(file);
  for (std::uint32_t p = half; p < md.pieceCount(); ++p) {
    vault.storeCiphertext(md.uri, p,
                          escrow.encrypt(md.uri, p,
                                         core::makePieceBytes(info, p)));
  }
  std::printf("leecher overheard %zu encrypted pieces - none readable yet\n",
              vault.pendingCiphertexts());

  // ...the leecher contributes (serves a request), earns credit...
  seederLedger.onReceivedRequested(NodeId(2));
  std::printf("leecher served a request: credit now %.1f (threshold %.1f)\n",
              seederLedger.credit(NodeId(2)), escrow.minimumCredit());

  // ...and the keys unlock the vault piece by piece.
  std::uint32_t decrypted = 0;
  for (std::uint32_t p = half; p < md.pieceCount(); ++p) {
    const auto key = escrow.requestKey(NodeId(2), seederLedger, md.uri, p);
    if (!key) continue;
    vault.storeKey(md.uri, p, *key);
    if (const auto plaintext = vault.tryDecrypt(md.uri, p)) {
      if (internet.catalog().verifyPiece(file, p, *plaintext)) {
        leecher.node().acceptPiece(file, p, md.pieceCount(), now);
        ++decrypted;
      }
    }
  }
  std::printf("keys released: %u/%u choked pieces decrypted, plaintext "
              "checksums verified\n",
              decrypted, md.pieceCount() - half);
  std::printf("file complete: %s\n",
              leecher.node().pieces().isComplete(file) ? "yes" : "no");
  return 0;
}
