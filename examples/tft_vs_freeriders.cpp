// Tit-for-tat incentives vs free-riders (paper Sections IV-B and V-B).
//
// Some students never transmit (free-riders). Under the tit-for-tat
// schedulers, peers weigh requests by the requester's credit, so
// contributors are served earlier and free-riders are starved of targeted
// service (they can still overhear popular pushes — the paper notes
// free-riding cannot be fully inhibited over broadcast).
//
//   ./build/examples/tft_vs_freeriders
#include <cstdio>
#include <iostream>

#include "src/core/engine.hpp"
#include "src/trace/nus.hpp"
#include "src/trace/trace_stats.hpp"
#include "src/util/csv.hpp"

using namespace hdtn;

int main() {
  trace::NusParams traceParams;
  traceParams.students = 100;
  traceParams.courses = 20;
  traceParams.coursesPerStudent = 4;
  traceParams.days = 10;
  traceParams.attendanceRate = 0.9;
  traceParams.seed = 15;
  const trace::ContactTrace trace = trace::generateNus(traceParams);

  std::printf("campus with free-riders: 100 students, 30%% free-riding\n\n");

  Table table({"scheduler", "contributor file ratio",
               "free-rider file ratio", "advantage"});
  for (auto scheduling :
       {core::Scheduling::kCooperative, core::Scheduling::kTitForTat}) {
    core::EngineParams params;
    params.protocol.kind = core::ProtocolKind::kMbt;
    params.protocol.scheduling = scheduling;
    params.internetAccessFraction = 0.3;
    params.freeRiderFraction = 0.3;
    params.newFilesPerDay = 40;
    params.fileTtlDays = 3;
    params.frequentContactPeriod = trace::kNusFrequentPeriod;
    params.seed = 77;
    const core::EngineResult result = core::runSimulation(trace, params);
    const double contributor = result.contributorDelivery.fileRatio;
    const double freeRider = result.freeRiderDelivery.fileRatio;
    table.addRow({scheduling == core::Scheduling::kCooperative
                      ? "cooperative"
                      : "tit-for-tat",
                  Table::formatDouble(contributor, 3),
                  Table::formatDouble(freeRider, 3),
                  Table::formatDouble(contributor - freeRider, 3)});
  }
  table.writeAligned(std::cout);

  // Show the credit mechanism itself: one node's ledger after the run.
  core::EngineParams params;
  params.protocol.kind = core::ProtocolKind::kMbt;
  params.protocol.scheduling = core::Scheduling::kTitForTat;
  params.internetAccessFraction = 0.3;
  params.freeRiderFraction = 0.3;
  params.frequentContactPeriod = trace::kNusFrequentPeriod;
  params.seed = 77;
  core::Engine engine(trace, params);
  engine.run();
  // Find a non-access contributor and print whom it credits most.
  for (std::uint32_t i = 0; i < engine.nodeCount(); ++i) {
    const core::Node& node = engine.node(NodeId(i));
    if (node.options().internetAccess || node.options().freeRider) continue;
    const auto ranking = node.credits().ranking();
    if (ranking.size() < 3) continue;
    std::printf("\nnode %u's top creditors (peers that served it):\n", i);
    for (std::size_t k = 0; k < 3; ++k) {
      const core::Node& peer = engine.node(ranking[k].first);
      std::printf("  node %u: credit %.1f%s\n", ranking[k].first.value,
                  ranking[k].second,
                  peer.options().freeRider ? " (free-rider)" : "");
    }
    break;
  }
  std::printf(
      "\nCredit buys priority in both discovery and download, so under\n"
      "either scheduler free-riders trail contributors; tit-for-tat makes\n"
      "the priority explicit at some scheduling-efficiency cost. As the\n"
      "paper notes, broadcast overhearing means free-riding cannot be\n"
      "fully inhibited - only deprioritized.\n");
  return 0;
}
