// Vehicular podcast distribution: the DieselNet-style scenario.
//
// Buses on city routes exchange podcast episodes at route meeting points.
// Episodes are multi-piece files (the paper's 256 KB pieces, scaled down),
// so a bus may assemble an episode from pieces received in different
// contacts — the store-carry-forward download path of Section V.
//
//   ./build/examples/vehicular_podcast
#include <cstdio>
#include <iostream>

#include "src/core/engine.hpp"
#include "src/trace/dieselnet.hpp"
#include "src/trace/trace_stats.hpp"
#include "src/util/stats.hpp"

using namespace hdtn;

int main() {
  trace::DieselNetParams traceParams;
  traceParams.buses = 30;
  traceParams.routes = 6;
  traceParams.days = 15;
  traceParams.seed = 4;
  const trace::ContactTrace trace = trace::generateDieselNet(traceParams);

  const trace::TraceSummary summary = trace::summarize(trace);
  std::printf("bus trace: %zu buses, %zu pairwise contacts, "
              "mean contact %.0f s, mean inter-contact %.1f h\n",
              summary.nodeCount, summary.contactCount,
              summary.meanContactDuration,
              summary.meanInterContactTime / 3600.0);

  // Inter-contact time distribution: the long tail is why DTN delivery
  // needs TTLs of days.
  SampleSet gaps = trace::interContactTimes(trace);
  Histogram hist(0.0, 3.0 * kDay, 12);
  for (double g : gaps.samples()) hist.add(g);
  std::printf("\ninter-contact time histogram (seconds):\n%s\n",
              hist.render(40).c_str());

  core::EngineParams params;
  params.protocol.kind = core::ProtocolKind::kMbt;
  params.internetAccessFraction = 0.15;  // buses passing the depot Wi-Fi
  params.newFilesPerDay = 50;            // daily podcast episodes
  params.fileTtlDays = 2;
  params.piecesPerFile = 4;  // multi-piece episodes
  params.filesPerContact = 1;            // 4-piece budget per contact
  params.metadataPerContact = 4;
  params.frequentContactPeriod = trace::kDieselNetFrequentPeriod;
  params.seed = 21;

  core::Engine engine(trace, params);
  const core::EngineResult result = engine.run();

  std::printf("episodes published: %llu (4 pieces each)\n",
              static_cast<unsigned long long>(result.totals.filesPublished));
  std::printf("piece broadcasts: %llu, receptions: %llu\n",
              static_cast<unsigned long long>(result.totals.pieceBroadcasts),
              static_cast<unsigned long long>(result.totals.pieceReceptions));
  std::printf("non-access buses: metadata ratio %.3f, episode ratio %.3f, "
              "mean episode delay %.1f h\n",
              result.delivery.metadataRatio, result.delivery.fileRatio,
              result.delivery.meanFileDelaySeconds / 3600.0);

  // How fragmented are in-flight downloads? Count partially assembled
  // episodes across buses at the end of the run.
  std::size_t partial = 0, complete = 0;
  for (std::uint32_t i = 0; i < engine.nodeCount(); ++i) {
    const core::Node& node = engine.node(NodeId(i));
    for (FileId file : node.pieces().files()) {
      if (node.pieces().isComplete(file)) {
        ++complete;
      } else if (node.pieces().piecesHeld(file) > 0) {
        ++partial;
      }
    }
  }
  std::printf("episodes across all buses at end of run: %zu complete, "
              "%zu partially assembled\n",
              complete, partial);
  return 0;
}
