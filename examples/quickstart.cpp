// Quickstart: the paper's Figure 1 scenario.
//
// Five mobile nodes form a DTN around the Internet. Node 0 can reach the
// Internet (a free Wi-Fi access point); nodes 1-4 cannot. Files are
// published daily on the Internet; node 0 downloads them and, as it meets
// the others, cooperative file discovery distributes metadata and the
// broadcast-based download distributes the files themselves.
//
// Build and run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "src/core/engine.hpp"
#include "src/trace/contact_trace.hpp"

using namespace hdtn;

namespace {

// A hand-built mobility pattern: node 0 commutes past nodes 1 and 2 in the
// afternoon; nodes 1-4 gather in the evening (one broadcast clique).
trace::ContactTrace figureOneTrace(int days) {
  trace::ContactTrace t("figure1", 5);
  for (int day = 0; day < days; ++day) {
    const SimTime base = static_cast<SimTime>(day) * kDay;
    trace::Contact commute1;
    commute1.start = base + 15 * kHour;
    commute1.end = commute1.start + 5 * kMinute;
    commute1.members = {NodeId(0), NodeId(1)};
    t.addContact(commute1);

    trace::Contact commute2;
    commute2.start = base + 16 * kHour;
    commute2.end = commute2.start + 5 * kMinute;
    commute2.members = {NodeId(0), NodeId(2)};
    t.addContact(commute2);

    trace::Contact gathering;
    gathering.start = base + 19 * kHour;
    gathering.end = gathering.start + kHour;
    gathering.members = {NodeId(1), NodeId(2), NodeId(3), NodeId(4)};
    t.addContact(gathering);
  }
  t.sortByStart();
  return t;
}

}  // namespace

int main() {
  const trace::ContactTrace trace = figureOneTrace(/*days=*/7);

  core::EngineParams params;
  params.protocol.kind = core::ProtocolKind::kMbt;
  params.explicitAccessNodes = {NodeId(0)};  // the Figure-1 "source"
  params.newFilesPerDay = 10;
  params.fileTtlDays = 3;
  params.metadataPerContact = 8;
  params.filesPerContact = 4;
  params.frequentContactPeriod = kDay;
  params.seed = 2024;

  core::Engine engine(trace, params);
  const core::EngineResult result = engine.run();

  std::printf("hybrid-DTN quickstart (Figure 1 scenario)\n");
  std::printf("  nodes: 5 (node 0 has Internet access)\n");
  std::printf("  trace: %zu contacts over 7 days\n", trace.contactCount());
  std::printf("  files published: %llu, queries generated: %llu\n\n",
              static_cast<unsigned long long>(result.totals.filesPublished),
              static_cast<unsigned long long>(
                  result.totals.queriesGenerated));

  std::printf("per-node outcome:\n");
  for (std::uint32_t i = 0; i < engine.nodeCount(); ++i) {
    const core::Node& node = engine.node(NodeId(i));
    std::size_t queries = 0, found = 0, downloaded = 0;
    for (const auto& qs : node.queryStates()) {
      ++queries;
      if (qs.metadataFound) ++found;
      if (qs.fileFound) ++downloaded;
    }
    std::printf(
        "  node %u%s: %zu queries, %zu metadata found, %zu files "
        "downloaded, %zu metadata records stored, %zu complete files "
        "carried\n",
        i, node.options().internetAccess ? " (Internet)" : "", queries,
        found, downloaded, node.metadata().size(),
        node.pieces().completeFiles().size());
  }

  std::printf("\nnon-access delivery ratios: metadata %.2f, file %.2f\n",
              result.delivery.metadataRatio, result.delivery.fileRatio);
  std::printf("mean file delivery delay: %.1f hours\n",
              result.delivery.meanFileDelaySeconds / 3600.0);
  std::printf("broadcasts: %llu metadata, %llu pieces over %llu contacts\n",
              static_cast<unsigned long long>(
                  result.totals.metadataBroadcasts),
              static_cast<unsigned long long>(result.totals.pieceBroadcasts),
              static_cast<unsigned long long>(
                  result.totals.contactsProcessed));
  return 0;
}
