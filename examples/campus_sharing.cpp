// Campus file sharing: the NUS-student-trace scenario (paper Section VI).
//
// Students carry phones; contacts happen inside classrooms, where everyone
// in the room forms one broadcast clique. A fraction of students have
// Internet access (dorm Wi-Fi); the rest obtain daily media files through
// cooperative discovery and download. The example runs the three protocols
// the paper compares and prints their delivery ratios side by side.
//
//   ./build/examples/campus_sharing
#include <cstdio>
#include <iostream>

#include "src/core/engine.hpp"
#include "src/trace/nus.hpp"
#include "src/trace/trace_stats.hpp"
#include "src/util/csv.hpp"

using namespace hdtn;

int main() {
  trace::NusParams traceParams;
  traceParams.students = 120;
  traceParams.courses = 24;
  traceParams.coursesPerStudent = 4;
  traceParams.days = 10;
  traceParams.attendanceRate = 0.85;
  traceParams.seed = 7;
  const trace::ContactTrace trace = trace::generateNus(traceParams);

  const trace::TraceSummary summary = trace::summarize(trace);
  std::printf("campus trace: %zu students, %zu classroom sessions, "
              "mean clique size %.1f, span %lld days\n",
              summary.nodeCount, summary.contactCount, summary.meanCliqueSize,
              static_cast<long long>(summary.span / kDay));
  std::printf("frequent-contact pairs (>= 1 contact/day): %zu\n\n",
              trace::frequentContactPairs(trace, trace::kNusFrequentPeriod)
                  .size());

  Table table({"protocol", "metadata ratio", "file ratio",
               "mean file delay (h)", "metadata broadcasts",
               "piece broadcasts"});
  for (auto kind : {core::ProtocolKind::kMbt, core::ProtocolKind::kMbtQ,
                    core::ProtocolKind::kMbtQm}) {
    core::EngineParams params;
    params.protocol.kind = kind;
    params.internetAccessFraction = 0.3;
    params.newFilesPerDay = 40;
    params.fileTtlDays = 3;
    params.metadataPerContact = 5;
    params.filesPerContact = 2;
    params.frequentContactPeriod = trace::kNusFrequentPeriod;
    params.seed = 99;
    const core::EngineResult result = core::runSimulation(trace, params);
    table.addRow({core::protocolName(kind),
                  Table::formatDouble(result.delivery.metadataRatio, 3),
                  Table::formatDouble(result.delivery.fileRatio, 3),
                  Table::formatDouble(
                      result.delivery.meanFileDelaySeconds / 3600.0, 1),
                  std::to_string(result.totals.metadataBroadcasts),
                  std::to_string(result.totals.pieceBroadcasts)});
  }
  table.writeAligned(std::cout);
  std::printf(
      "\nMBT distributes queries + metadata + files; MBT-Q drops query\n"
      "proxying; MBT-QM pushes files by global popularity only. The gap\n"
      "between the rows is the value of cooperative file discovery.\n");
  return 0;
}
