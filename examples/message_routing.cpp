// Message routing over a DTN: the store-carry-forward substrate.
//
// Before files can be shared, a DTN must move *anything* at all; this
// example runs the classic routing family over a random-waypoint pedestrian
// trace and compares each protocol with the space-time-graph optimum, then
// prints one concrete foremost journey, hop by hop.
//
//   ./build/examples/message_routing
#include <cstdio>
#include <iostream>

#include "src/graph/space_time.hpp"
#include "src/routing/routing.hpp"
#include "src/trace/mobility.hpp"
#include "src/util/csv.hpp"

using namespace hdtn;

int main() {
  trace::RandomWaypointParams mobility;
  mobility.nodes = 30;
  mobility.fieldWidth = mobility.fieldHeight = 800.0;
  mobility.radioRange = 40.0;
  mobility.duration = 6 * kHour;
  mobility.seed = 12;
  const trace::ContactTrace trace = generateRandomWaypoint(mobility);
  std::printf("pedestrian trace: %zu nodes, %zu contacts over 6 h\n\n",
              trace.nodeCount(), trace.contactCount());

  Rng rng(5);
  const auto workload = routing::makeUniformWorkload(
      200, trace.nodeCount(), 4 * kHour, 2 * kHour, rng);

  Table table({"protocol", "delivery", "mean delay (min)", "forwards"});
  for (auto algorithm : {routing::RoutingAlgorithm::kDirectDelivery,
                         routing::RoutingAlgorithm::kSprayAndWait,
                         routing::RoutingAlgorithm::kProphet,
                         routing::RoutingAlgorithm::kEpidemic}) {
    routing::RoutingParams params;
    params.algorithm = algorithm;
    const auto result = routing::simulateRouting(trace, workload, params);
    table.addRow({routing::routingAlgorithmName(algorithm),
                  Table::formatDouble(result.deliveryRatio, 3),
                  Table::formatDouble(result.meanDelay / 60.0, 1),
                  std::to_string(result.forwards)});
  }
  const auto oracle = routing::oracleRouting(trace, workload);
  table.addRow({"oracle", Table::formatDouble(oracle.deliveryRatio, 3),
                Table::formatDouble(oracle.meanDelay / 60.0, 1), "-"});
  table.writeAligned(std::cout);

  // One concrete optimal journey, hop by hop.
  const graph::SpaceTimeGraph stg(trace);
  for (const auto& m : workload) {
    const graph::Journey journey =
        stg.foremostJourney(m.source, m.destination, m.createdAt);
    if (!journey.reachable || journey.hops.size() < 3) continue;
    std::printf(
        "\nforemost journey for message %u (node %u -> node %u, created "
        "%s):\n",
        m.id.value, m.source.value, m.destination.value,
        formatTime(m.createdAt).c_str());
    for (const auto& hop : journey.hops) {
      std::printf("  %s  node %-3u -> node %-3u\n",
                  formatTime(hop.time).c_str(), hop.from.value,
                  hop.to.value);
    }
    std::printf("  arrives %s, %zu hops\n",
                formatTime(journey.arrival).c_str(), journey.hops.size());
    break;
  }
  return 0;
}
