// Ablation A6: metadata authentication vs fake publishers.
//
// The paper lists "(f) authentication information of the metadata against
// fake publishers" among the metadata fields and motivates discovery with
// the existence of fake files. This bench quantifies why: forger nodes
// inject fake records mimicking the day's most popular titles (inflated
// popularity pushes them to the front of every send queue). Without
// verification, victims' queries lock onto files that do not exist; with
// registry verification, fakes are dropped at reception AND repeat
// offenders are distrusted (ignored as senders). The distrust step matters:
// per-record rejection alone loses to forgers minting fresh fake ids every
// day, because each new id burns another broadcast slot per clique.
#include <iostream>
#include <vector>

#include "bench/harness.hpp"
#include "src/core/protocol.hpp"
#include "src/util/ascii_chart.hpp"
#include "src/util/csv.hpp"

int main() {
  using namespace hdtn;
  std::cout << "=== authentication: fake-publisher attack vs registry "
               "verification (NUS trace, MBT) ===\n\n";

  const std::vector<double> forgerFractions = {0.0, 0.1, 0.2, 0.3, 0.4};
  const int seeds = 3;

  Table table({"forger_fraction", "no-verify file", "verify file",
               "forgeries accepted", "forgeries rejected"});
  std::vector<double> unverified, verified;
  for (double fraction : forgerFractions) {
    double sums[2] = {0, 0};
    std::uint64_t accepted = 0, rejected = 0;
    for (int seed = 1; seed <= seeds; ++seed) {
      const auto trace = bench::defaultNus(static_cast<std::uint64_t>(seed));
      for (int mode = 0; mode < 2; ++mode) {
        core::EngineParams params = bench::nusBaseParams();
        params.protocol.kind = core::ProtocolKind::kMbt;
        params.forgerFraction = fraction;
        params.verifyMetadata = mode == 1;
        params.seed = static_cast<std::uint64_t>(seed) * 1000003u;
        const auto result = core::runSimulation(trace, params);
        sums[mode] += result.delivery.fileRatio;
        if (mode == 0) accepted += result.totals.forgeriesAccepted;
        if (mode == 1) rejected += result.totals.forgeriesRejected;
      }
    }
    table.addRow({Table::formatDouble(fraction, 2),
                  Table::formatDouble(sums[0] / seeds, 4),
                  Table::formatDouble(sums[1] / seeds, 4),
                  std::to_string(accepted / seeds),
                  std::to_string(rejected / seeds)});
    unverified.push_back(sums[0] / seeds);
    verified.push_back(sums[1] / seeds);
  }
  table.writeAligned(std::cout);
  std::cout << "\nCSV:\n";
  table.writeCsv(std::cout);
  std::cout << "\n";

  AsciiChart chart("file delivery ratio vs forger fraction",
                   forgerFractions);
  chart.addSeries({"no verification", 'o', unverified});
  chart.addSeries({"registry verification", '*', verified});
  std::cout << chart.render() << std::endl;
  return 0;
}
