// Ablation A4: oracle vs server-observed popularity.
//
// The paper defines popularity operationally — "the percentage of Internet
// access nodes requesting the file in the past 24 hours" — but the
// simulation model assigns it. This ablation runs MBT with (a) the
// publisher-assigned ground truth and (b) the PopularityTable estimate
// computed from access-node requests, across access fractions: with few
// access nodes the estimate is a small sample and ranking quality drops.
#include <iostream>
#include <vector>

#include "bench/harness.hpp"
#include "src/core/protocol.hpp"
#include "src/util/ascii_chart.hpp"
#include "src/util/csv.hpp"

int main() {
  using namespace hdtn;
  std::cout << "=== popularity: oracle vs observed estimates (NUS trace, "
               "MBT) ===\n\n";

  const std::vector<double> fractions = {0.1, 0.2, 0.3, 0.5, 0.7, 0.9};
  const int seeds = 3;

  Table table({"access_fraction", "oracle file", "observed file",
               "oracle md", "observed md"});
  std::vector<double> oracleSeries, observedSeries;
  for (double fraction : fractions) {
    double sums[4] = {0, 0, 0, 0};
    for (int seed = 1; seed <= seeds; ++seed) {
      const auto trace = bench::defaultNus(static_cast<std::uint64_t>(seed));
      for (int mode = 0; mode < 2; ++mode) {
        core::EngineParams params = bench::nusBaseParams();
        params.protocol.kind = core::ProtocolKind::kMbt;
        params.internetAccessFraction = fraction;
        params.useObservedPopularity = mode == 1;
        params.seed = static_cast<std::uint64_t>(seed) * 1000003u;
        const auto result = core::runSimulation(trace, params);
        sums[2 * mode + 0] += result.delivery.fileRatio;
        sums[2 * mode + 1] += result.delivery.metadataRatio;
      }
    }
    for (double& s : sums) s /= seeds;
    table.addRow({fraction, sums[0], sums[2], sums[1], sums[3]});
    oracleSeries.push_back(sums[0]);
    observedSeries.push_back(sums[2]);
  }
  table.writeAligned(std::cout);
  std::cout << "\nCSV:\n";
  table.writeCsv(std::cout);
  std::cout << "\n";

  AsciiChart chart("file delivery: oracle vs observed popularity",
                   fractions);
  chart.addSeries({"oracle popularity", '*', oracleSeries});
  chart.addSeries({"observed popularity", 'o', observedSeries});
  std::cout << chart.render() << std::endl;
  return 0;
}
