// Ablation A5: broadcast-based vs pairwise file download at system level.
//
// Section V's motivation, measured end-to-end rather than analytically: the
// same MBT discovery stack runs with (a) the paper's broadcast download
// (one sender, whole clique receives) and (b) the prior-work pairwise
// baseline (disjoint pairs, one receiver per transmission) on the NUS trace
// whose classroom cliques are where broadcast pays off, and, for contrast,
// on the strictly pairwise DieselNet trace where the two coincide at
// two-member contacts.
#include <iostream>
#include <vector>

#include "bench/harness.hpp"
#include "src/core/protocol.hpp"
#include "src/util/ascii_chart.hpp"
#include "src/util/csv.hpp"

int main() {
  using namespace hdtn;
  std::cout << "=== broadcast_pairwise: Sec.-V download modes, full system "
               "(MBT) ===\n\n";

  const std::vector<double> fractions = {0.1, 0.3, 0.5, 0.7, 0.9};
  const int seeds = 3;

  struct Family {
    const char* name;
    bool diesel;
  };
  for (const Family& family :
       {Family{"nus (classroom cliques)", false},
        Family{"dieselnet (pairwise contacts)", true}}) {
    Table table({"access_fraction", "broadcast file", "pairwise file",
                 "broadcast md", "pairwise md"});
    std::vector<double> broadcastSeries, pairwiseSeries;
    for (double fraction : fractions) {
      double sums[4] = {0, 0, 0, 0};
      for (int seed = 1; seed <= seeds; ++seed) {
        const auto trace =
            family.diesel
                ? bench::defaultDieselNet(static_cast<std::uint64_t>(seed))
                : bench::defaultNus(static_cast<std::uint64_t>(seed));
        for (int mode = 0; mode < 2; ++mode) {
          core::EngineParams params = family.diesel
                                          ? bench::dieselNetBaseParams()
                                          : bench::nusBaseParams();
          params.protocol.kind = core::ProtocolKind::kMbt;
          params.downloadMode = mode == 0 ? core::DownloadMode::kBroadcast
                                          : core::DownloadMode::kPairwise;
          params.internetAccessFraction = fraction;
          params.seed = static_cast<std::uint64_t>(seed) * 1000003u;
          const auto result = core::runSimulation(trace, params);
          sums[2 * mode + 0] += result.delivery.fileRatio;
          sums[2 * mode + 1] += result.delivery.metadataRatio;
        }
      }
      for (double& s : sums) s /= seeds;
      table.addRow({fraction, sums[0], sums[2], sums[1], sums[3]});
      broadcastSeries.push_back(sums[0]);
      pairwiseSeries.push_back(sums[2]);
    }
    std::cout << "--- " << family.name << " ---\n";
    table.writeAligned(std::cout);
    std::cout << "\nCSV:\n";
    table.writeCsv(std::cout);
    std::cout << "\n";
    AsciiChart chart(std::string("file delivery, ") + family.name,
                     fractions);
    chart.addSeries({"broadcast (paper)", '*', broadcastSeries});
    chart.addSeries({"pairwise baseline", 'o', pairwiseSeries});
    std::cout << chart.render() << "\n";
  }
  std::cout << "expected: broadcast >= pairwise on the clique trace, with "
               "the gap largest at\nlow access fractions; near-identical on "
               "the pairwise-only trace.\n";
  return 0;
}
