// Shared harness for the figure-regeneration benches.
//
// Every bench binary regenerates one panel of the paper's evaluation
// (Figures 2(a)-2(e) on the DieselNet-style trace, 3(a)-3(f) on the NUS
// style trace): it sweeps one parameter, runs the three protocols (MBT,
// MBT-Q, MBT-QM) at each point averaged over several seeds, and prints the
// metadata and file delivery-ratio series as aligned tables, CSV, and ASCII
// charts — the same rows/series the paper plots.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/core/engine.hpp"
#include "src/trace/contact_trace.hpp"
#include "src/util/types.hpp"

namespace hdtn::bench {

/// Flags shared by every bench binary, parsed once by parseCommonArgs so
/// each binary does not re-implement the scanning loop.
struct CommonArgs {
  /// Seeds averaged per sweep point (--seeds=N, or the HDTN_SEEDS env var).
  int seeds = 3;
  /// Worker threads (--threads=N; defaults to the machine's core count).
  unsigned threads = 0;
  /// Empty when --json was not given; "--json" defaults the path to
  /// BENCH_<figure id>.json in the working directory, "--json=PATH" sets it.
  std::string jsonPath;
  /// Empty when --timeseries was not given; "--timeseries" defaults to the
  /// working directory, "--timeseries=DIR" sets it. When set, runFigure
  /// re-runs the seed-1 simulation of every (x, protocol) point through the
  /// sampled stepper and writes TS_<figure>_<protocol>_x<value>.csv files.
  std::string timeseriesDir;
  /// Sampling cadence for --timeseries (--sample-every=SECONDS).
  Duration sampleEvery = 6 * kHour;
  /// Scenario file (--scenario=PATH): its engine parameters (protocol
  /// knobs, fault rates, ...) replace the figure's base params before the
  /// sweep applies. The figure keeps its own trace and x-axis.
  std::string scenarioPath;
  /// Non-empty when --supervise was given: run every sweep point in a
  /// subprocess under bench::superviseOnePoint, journaling completed points
  /// here ("--supervise" defaults to BENCH_<figure id>.journal,
  /// "--supervise=PATH" sets it). A re-invoked sweep skips journaled
  /// points. See docs/CHECKPOINT.md.
  std::string superviseJournal;
  /// Wall-clock budget per supervised point (--point-timeout=SECONDS).
  double pointTimeoutSeconds = 600.0;
  /// Attempt budget per supervised point (--max-attempts=N).
  int maxAttempts = 3;
  /// Checkpoint cadence for supervised points, sim seconds
  /// (--checkpoint-every=SECONDS).
  Duration checkpointEvery = 6 * kHour;
  /// Internal: --point=KEY puts the binary in single-point child mode
  /// (prints one RESULT line; used by the supervisor, not by hand).
  std::string pointKey;
  /// Internal: the child's checkpoint file (--point-checkpoint=PATH).
  std::string pointCheckpoint;
};

/// Parses --seeds/--threads/--json/--timeseries/--sample-every/--scenario
/// plus the supervision flags --supervise/--point-timeout/--max-attempts/
/// --checkpoint-every and the child-mode --point/--point-checkpoint
/// (unknown arguments are ignored; google-benchmark style binaries pass
/// their own).
[[nodiscard]] CommonArgs parseCommonArgs(const std::string& figureId,
                                         int defaultSeeds, int argc,
                                         char** argv);

using TraceFactory =
    std::function<hdtn::trace::ContactTrace(double x, std::uint64_t seed)>;
using ParamSetter = std::function<void(hdtn::core::EngineParams&, double x)>;

struct FigureSpec {
  std::string id;      ///< e.g. "fig2a"
  std::string title;   ///< chart heading
  std::string xLabel;  ///< swept parameter
  std::vector<double> xs;
  TraceFactory makeTrace;
  hdtn::core::EngineParams base;
  ParamSetter apply;
  /// Seeds averaged per point (override with --seeds=N or HDTN_SEEDS).
  int seeds = 3;
  /// True when the trace itself depends on x (Fig 3(f) attendance sweep).
  bool traceDependsOnX = false;
};

/// Runs the sweep and prints the report. Returns a process exit code.
int runFigure(FigureSpec spec, int argc, char** argv);

/// The synthetic stand-ins for the paper's two traces, at the scales used
/// by all figure benches.
hdtn::trace::ContactTrace defaultDieselNet(std::uint64_t seed);
hdtn::trace::ContactTrace defaultNus(std::uint64_t seed,
                                     double attendanceRate = 0.85);

/// Default engine parameters per trace family (frequent-contact windows per
/// the paper: 3 days for DieselNet, 1 day for NUS).
hdtn::core::EngineParams dieselNetBaseParams();
hdtn::core::EngineParams nusBaseParams();

/// 0.1, 0.2, ..., 0.9 — the Internet-access-fraction sweep.
std::vector<double> accessFractionSweep();

}  // namespace hdtn::bench
