// Microbenchmarks of the library's hot paths (google-benchmark): SHA-1
// hashing, maximal-clique enumeration, query matching, and the discovery /
// download planners at contact-window scale.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "src/core/discovery.hpp"
#include "src/core/download.hpp"
#include "src/core/engine.hpp"
#include "src/core/file_catalog.hpp"
#include "src/core/internet.hpp"
#include "src/core/query.hpp"
#include "src/graph/clique.hpp"
#include "src/net/codec.hpp"
#include "src/obs/events.hpp"
#include "src/trace/nus.hpp"
#include "src/util/bloom.hpp"
#include "src/util/random.hpp"
#include "src/util/sha1.hpp"

namespace {

using namespace hdtn;
using namespace hdtn::core;

void BM_Sha1_256KiB(benchmark::State& state) {
  std::vector<std::uint8_t> data(256 * 1024);
  Rng rng(1);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_Sha1_256KiB);

AdjacencyGraph randomGraph(std::uint32_t n, double edgeChance,
                           std::uint64_t seed) {
  Rng rng(seed);
  AdjacencyGraph graph;
  for (std::uint32_t i = 0; i < n; ++i) graph.addNode(NodeId(i));
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = i + 1; j < n; ++j) {
      if (rng.chance(edgeChance)) graph.addEdge(NodeId(i), NodeId(j));
    }
  }
  return graph;
}

void BM_MaximalCliques(benchmark::State& state) {
  const auto graph =
      randomGraph(static_cast<std::uint32_t>(state.range(0)), 0.5, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(maximalCliques(graph));
  }
}
BENCHMARK(BM_MaximalCliques)->Arg(8)->Arg(16)->Arg(24);

void BM_MaximalCliquesContaining(benchmark::State& state) {
  const auto graph =
      randomGraph(static_cast<std::uint32_t>(state.range(0)), 0.5, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(maximalCliquesContaining(graph, NodeId(0)));
  }
}
BENCHMARK(BM_MaximalCliquesContaining)->Arg(16)->Arg(24);

void BM_PartitionIntoCliques(benchmark::State& state) {
  const auto graph =
      randomGraph(static_cast<std::uint32_t>(state.range(0)), 0.5, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(partitionIntoCliques(graph));
  }
}
BENCHMARK(BM_PartitionIntoCliques)->Arg(16)->Arg(24);

InternetServices makeCatalog(int files) {
  InternetServices internet;
  SyntheticBatchParams batch;
  batch.count = files;
  batch.publishedAt = 0;
  batch.ttl = 3 * kDay;
  batch.lambda = files / 2.0;
  Rng rng(7);
  publishSyntheticBatch(internet, batch, rng);
  return internet;
}

void BM_QueryMatch(benchmark::State& state) {
  InternetServices internet = makeCatalog(200);
  const Metadata& md = internet.catalog().metadataFor(FileId(100));
  const std::string query =
      canonicalQueryText(*internet.catalog().find(FileId(100)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(queryMatches(query, md));
  }
}
BENCHMARK(BM_QueryMatch);

// Shared fixture for the discovery-planning benchmarks.
struct DiscoveryFixture {
  InternetServices internet;
  std::vector<MetadataStore> stores;
  std::vector<CreditLedger> ledgers;
  std::vector<DiscoveryPeer> peers;

  explicit DiscoveryFixture(std::size_t members)
      : internet(makeCatalog(150)), stores(members), ledgers(members) {
    Rng rng(9);
    for (std::size_t i = 0; i < members; ++i) {
      for (FileId f : internet.catalog().allFiles()) {
        if (rng.chance(0.4)) stores[i].add(internet.catalog().metadataFor(f));
      }
      DiscoveryPeer peer;
      peer.id = NodeId(static_cast<std::uint32_t>(i));
      peer.store = &stores[i];
      const FileId wanted(static_cast<std::uint32_t>(rng.pickIndex(150)));
      peer.queries = {
          canonicalQueryText(*internet.catalog().find(wanted))};
      peer.credits = &ledgers[i];
      for (std::size_t p = 0; p < members; ++p) {
        ledgers[i].addCredit(NodeId(static_cast<std::uint32_t>(p)),
                             rng.uniform(0.0, 10.0));
      }
      peers.push_back(std::move(peer));
    }
  }
};

void BM_PlanDiscovery(benchmark::State& state) {
  DiscoveryFixture fx(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(planDiscovery(fx.peers, 10,
                                           Scheduling::kCooperative));
  }
}
BENCHMARK(BM_PlanDiscovery)->Arg(2)->Arg(8)->Arg(20);

void BM_PlanDiscoveryTft(benchmark::State& state) {
  DiscoveryFixture fx(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(planDiscovery(fx.peers, 10,
                                           Scheduling::kTitForTat));
  }
}
BENCHMARK(BM_PlanDiscoveryTft)->Arg(2)->Arg(8)->Arg(20);

void BM_MetadataStoreViews(benchmark::State& state) {
  InternetServices internet = makeCatalog(200);
  MetadataStore store;
  for (FileId f : internet.catalog().allFiles()) {
    store.add(internet.catalog().metadataFor(f));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.all());
    benchmark::DoNotOptimize(store.byPopularity());
  }
}
BENCHMARK(BM_MetadataStoreViews);

void BM_PlanDownload(benchmark::State& state) {
  const auto members = static_cast<std::size_t>(state.range(0));
  InternetServices internet = makeCatalog(150);
  Rng rng(11);
  std::vector<PieceStore> stores(members);
  std::vector<CreditLedger> ledgers(members);
  // DownloadPeer::wanted is a view; this vector owns the backing storage.
  std::vector<std::vector<FileId>> wantedStorage(members);
  std::vector<DownloadPeer> peers;
  for (std::size_t i = 0; i < members; ++i) {
    for (FileId f : internet.catalog().allFiles()) {
      if (!rng.chance(0.3)) continue;
      stores[i].registerFile(f, 1);
      stores[i].addPiece(f, 0);
    }
    DownloadPeer peer;
    peer.id = NodeId(static_cast<std::uint32_t>(i));
    peer.pieces = &stores[i];
    wantedStorage[i] = {FileId(static_cast<std::uint32_t>(rng.pickIndex(150)))};
    peer.wanted = wantedStorage[i];
    peer.credits = &ledgers[i];
    peers.push_back(std::move(peer));
  }
  const auto popularityOf = [&internet](FileId f) {
    return internet.catalog().find(f)->popularity;
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        planDownload(peers, popularityOf, 10, Scheduling::kCooperative));
  }
}
BENCHMARK(BM_PlanDownload)->Arg(2)->Arg(8)->Arg(20);

void BM_CodecMetadataRoundTrip(benchmark::State& state) {
  InternetServices internet = makeCatalog(1);
  const Metadata& md = internet.catalog().metadataFor(FileId(0));
  for (auto _ : state) {
    const auto frame = net::encodeMetadata(md);
    benchmark::DoNotOptimize(net::decodeMetadata(frame));
  }
}
BENCHMARK(BM_CodecMetadataRoundTrip);

void BM_BloomFilterInsertQuery(benchmark::State& state) {
  BloomFilter filter = BloomFilter::forCapacity(10000, 0.01);
  Rng rng(3);
  std::uint64_t key = 0;
  for (auto _ : state) {
    filter.insert(key);
    benchmark::DoNotOptimize(filter.mayContain(key ^ 1));
    ++key;
  }
}
BENCHMARK(BM_BloomFilterInsertQuery);

void BM_EngineNusRun(benchmark::State& state) {
  trace::NusParams tp;
  tp.students = 80;
  tp.courses = 16;
  tp.coursesPerStudent = 3;
  tp.days = 6;
  tp.seed = 2;
  const auto trace = trace::generateNus(tp);
  for (auto _ : state) {
    EngineParams params;
    params.protocol.kind = ProtocolKind::kMbt;
    params.frequentContactPeriod = kDay;
    params.seed = 5;
    benchmark::DoNotOptimize(runSimulation(trace, params));
  }
}
BENCHMARK(BM_EngineNusRun)->Unit(benchmark::kMillisecond);

// Same run with a counting observer attached: the spread against
// BM_EngineNusRun is the full cost of the event layer (construction of every
// SimEvent plus a virtual call per event). BM_EngineNusRun itself is the
// no-observer baseline — the detached hot path must not regress.
void BM_EngineNusRunWithObserver(benchmark::State& state) {
  trace::NusParams tp;
  tp.students = 80;
  tp.courses = 16;
  tp.coursesPerStudent = 3;
  tp.days = 6;
  tp.seed = 2;
  const auto trace = trace::generateNus(tp);
  for (auto _ : state) {
    EngineParams params;
    params.protocol.kind = ProtocolKind::kMbt;
    params.frequentContactPeriod = kDay;
    params.seed = 5;
    Engine engine(trace, params);
    obs::CountingObserver counter;
    engine.setObserver(&counter);
    benchmark::DoNotOptimize(engine.run());
    benchmark::DoNotOptimize(counter.total());
  }
}
BENCHMARK(BM_EngineNusRunWithObserver)->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main so CI can ask for machine-readable output with a stable flag:
// `bench_micro --json` is rewritten to google-benchmark's
// `--benchmark_format=json` before Initialize sees the arguments.
int main(int argc, char** argv) {
  std::vector<std::string> args(argv, argv + argc);
  for (auto& arg : args) {
    if (arg == "--json") arg = "--benchmark_format=json";
  }
  std::vector<char*> rewritten;
  rewritten.reserve(args.size());
  for (auto& arg : args) rewritten.push_back(arg.data());
  int rewrittenArgc = static_cast<int>(rewritten.size());
  benchmark::Initialize(&rewrittenArgc, rewritten.data());
  if (benchmark::ReportUnrecognizedArguments(rewrittenArgc,
                                             rewritten.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
