// Ablation A2: the two-phase (requested-first) send ordering.
//
// DESIGN.md calls out the phase-1 prioritization — "metadata/pieces
// requested by the nodes in the clique are sent first" — as a core design
// choice. This ablation replaces it with a pure popularity push
// (Scheduling::kPopularityOnly) and measures the cost across Internet-access
// fractions on both trace families.
#include <iostream>
#include <vector>

#include "bench/harness.hpp"
#include "src/core/protocol.hpp"
#include "src/util/ascii_chart.hpp"
#include "src/util/csv.hpp"

int main() {
  using namespace hdtn;
  std::cout << "=== phase_ordering: two-phase (requested-first) scheduling "
               "vs pure popularity push (MBT) ===\n\n";

  const std::vector<double> fractions = {0.1, 0.3, 0.5, 0.7, 0.9};
  const int seeds = 3;

  struct Family {
    const char* name;
    bool diesel;
  };
  const Family families[] = {{"dieselnet", true}, {"nus", false}};

  for (const Family& family : families) {
    Table table({"access_fraction", "two-phase file", "popularity-only file",
                 "two-phase md", "popularity-only md"});
    std::vector<double> twoPhase, popOnly;
    for (double fraction : fractions) {
      double sums[4] = {0, 0, 0, 0};
      for (int seed = 1; seed <= seeds; ++seed) {
        const auto trace =
            family.diesel
                ? bench::defaultDieselNet(static_cast<std::uint64_t>(seed))
                : bench::defaultNus(static_cast<std::uint64_t>(seed));
        for (int mode = 0; mode < 2; ++mode) {
          core::EngineParams params = family.diesel
                                          ? bench::dieselNetBaseParams()
                                          : bench::nusBaseParams();
          params.protocol.kind = core::ProtocolKind::kMbt;
          params.protocol.scheduling =
              mode == 0 ? core::Scheduling::kCooperative
                        : core::Scheduling::kPopularityOnly;
          params.internetAccessFraction = fraction;
          params.seed = static_cast<std::uint64_t>(seed) * 1000003u;
          const auto result = core::runSimulation(trace, params);
          sums[2 * mode + 0] += result.delivery.fileRatio;
          sums[2 * mode + 1] += result.delivery.metadataRatio;
        }
      }
      for (double& s : sums) s /= seeds;
      table.addRow({fraction, sums[0], sums[2], sums[1], sums[3]});
      twoPhase.push_back(sums[0]);
      popOnly.push_back(sums[2]);
    }
    std::cout << "--- " << family.name << " ---\n";
    table.writeAligned(std::cout);
    std::cout << "\nCSV:\n";
    table.writeCsv(std::cout);
    std::cout << "\n";
    AsciiChart chart(std::string(family.name) +
                         ": file delivery vs access fraction",
                     fractions);
    chart.addSeries({"two-phase (paper)", '*', twoPhase});
    chart.addSeries({"popularity-only", 'o', popOnly});
    std::cout << chart.render() << "\n";
  }
  return 0;
}
