// fig3e: NUS: delivery ratio vs files per contact.
#include "bench/harness.hpp"

int main(int argc, char** argv) {
  using namespace hdtn;
  bench::FigureSpec spec;
  spec.id = "fig3e";
  spec.title = "NUS: delivery ratio vs files per contact";
  spec.xLabel = "files_per_contact";
  spec.xs = {1, 2, 3, 5, 7, 10};
  spec.makeTrace = [](double, std::uint64_t seed) {
    return bench::defaultNus(seed);
  };
  spec.base = bench::nusBaseParams();
  spec.apply = [](core::EngineParams& p, double x) {
    p.filesPerContact = static_cast<int>(x);
  };
  return bench::runFigure(std::move(spec), argc, argv);
}
