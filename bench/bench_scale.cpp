// bench_scale — city-scale throughput and memory benchmark for the sharded
// streaming engine (core/sharded_engine.hpp + trace/citygen.hpp).
//
// Two measurements, written to BENCH_scale.json:
//   * shard scaling curve — a mid-size city (default 10^5 nodes) run at
//     several --shards settings; every run's merged result is checked
//     byte-identical to the shards=1 reference (the determinism contract);
//   * headline run — a day-long city at full scale (default 10^6 nodes)
//     streamed end to end, reporting wall seconds, contacts/sec, nodes/sec,
//     and peak RSS bytes per node. The trace never materializes: peak memory
//     is engine state plus one stream window.
//
// The binary doubles as the CI scale smoke: --smoke runs only the curve
// population once and enforces --max-wall-seconds / --max-kib-per-node,
// exiting non-zero on a budget or determinism violation.
//
//   bench_scale                        # full run, writes BENCH_scale.json
//   bench_scale --nodes=200000         # smaller headline
//   bench_scale --smoke --max-wall-seconds=300 --max-kib-per-node=8
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <ctime>
#include <string>
#include <vector>

#include "src/core/sharded_engine.hpp"
#include "src/trace/citygen.hpp"
#include "src/util/args.hpp"
#include "src/util/parallel.hpp"

using namespace hdtn;

namespace {

int usage() {
  const std::vector<FlagHelp> flags = {
      {"nodes=1000000", "headline city population"},
      {"curve-nodes=100000", "population for the shard scaling curve"},
      {"days=1", "simulated days"},
      {"districts=64", "city districts (= shardable components)"},
      {"threads=0", "worker threads (0 = hardware concurrency)"},
      {"shards=16", "shard count for the headline run"},
      {"json=BENCH_scale.json", "output path"},
      {"smoke", "CI mode: curve population only, enforce budgets"},
      {"max-wall-seconds=0", "fail when a run exceeds this wall time (0 = off)"},
      {"max-kib-per-node=0", "fail when peak RSS/node exceeds this (0 = off)"},
  };
  std::fputs(formatUsage("bench_scale [options]", flags).c_str(), stderr);
  return 2;
}

/// Peak RSS of this process in bytes (ru_maxrss is KiB on Linux).
std::size_t peakRssBytes() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024;
}

bool reportsIdentical(const core::DeliveryReport& a,
                      const core::DeliveryReport& b) {
  return a.queries == b.queries &&
         a.metadataDelivered == b.metadataDelivered &&
         a.filesDelivered == b.filesDelivered &&
         a.metadataRatio == b.metadataRatio && a.fileRatio == b.fileRatio &&
         a.meanMetadataDelaySeconds == b.meanMetadataDelaySeconds &&
         a.meanFileDelaySeconds == b.meanFileDelaySeconds;
}

bool resultsIdentical(const core::EngineResult& a,
                      const core::EngineResult& b) {
  return reportsIdentical(a.delivery, b.delivery) &&
         reportsIdentical(a.accessDelivery, b.accessDelivery) &&
         reportsIdentical(a.contributorDelivery, b.contributorDelivery) &&
         reportsIdentical(a.freeRiderDelivery, b.freeRiderDelivery) &&
         a.totals.contactsProcessed == b.totals.contactsProcessed &&
         a.totals.filesPublished == b.totals.filesPublished &&
         a.totals.queriesGenerated == b.totals.queriesGenerated &&
         a.totals.metadataBroadcasts == b.totals.metadataBroadcasts &&
         a.totals.pieceBroadcasts == b.totals.pieceBroadcasts &&
         a.totals.metadataReceptions == b.totals.metadataReceptions &&
         a.totals.pieceReceptions == b.totals.pieceReceptions;
}

trace::CityParams cityParams(std::uint32_t nodes, std::uint32_t districts,
                             int days) {
  trace::CityParams city;
  city.nodes = nodes;
  city.districts = districts;
  city.days = days;
  city.seed = 20260809;
  return city;
}

core::ShardedParams engineParams(std::uint32_t shards, unsigned threads) {
  core::ShardedParams params;
  // MBT-Q: metadata circulates in the DTN but query proxying (inert in
  // streaming feed mode anyway) is off, so the measured work is the real
  // steady-state contact path.
  params.engine.protocol.kind = core::ProtocolKind::kMbtQ;
  params.engine.internetAccessFraction = 0.3;
  params.engine.newFilesPerDay = 20;
  params.engine.fileTtlDays = 2;
  params.engine.seed = 7;
  params.shards = shards;
  params.threads = threads;
  return params;
}

struct RunStats {
  double wallSeconds = 0.0;
  std::uint64_t contacts = 0;
  core::EngineResult result;
};

RunStats runCity(const trace::CityParams& city, std::uint32_t shards,
                 unsigned threads) {
  trace::CityStream stream(city);
  const auto start = std::chrono::steady_clock::now();
  core::ShardedEngine engine(stream, engineParams(shards, threads));
  RunStats stats;
  stats.result = engine.run();
  stats.wallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  stats.contacts = stats.result.totals.contactsProcessed;
  return stats;
}

std::string utcDate() {
  char buf[16];
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  std::strftime(buf, sizeof(buf), "%Y-%m-%d", &tm);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  if (args.helpRequested()) return usage();

  const auto nodes = static_cast<std::uint32_t>(args.getInt("nodes", 1000000));
  const auto curveNodes =
      static_cast<std::uint32_t>(args.getInt("curve-nodes", 100000));
  const int days = static_cast<int>(args.getInt("days", 1));
  const auto districts =
      static_cast<std::uint32_t>(args.getInt("districts", 64));
  auto threads = static_cast<unsigned>(args.getInt("threads", 0));
  const auto headlineShards =
      static_cast<std::uint32_t>(args.getInt("shards", 16));
  const std::string jsonPath = args.getString("json", "BENCH_scale.json");
  const bool smoke = args.getBool("smoke", false);
  const double maxWall = args.getDouble("max-wall-seconds", 0.0);
  const double maxKibPerNode = args.getDouble("max-kib-per-node", 0.0);
  if (!args.ok("bench_scale")) return 2;
  if (threads == 0) threads = defaultThreadCount();

  bool budgetsOk = true;
  auto enforce = [&](const char* what, double wall, std::size_t population) {
    if (maxWall > 0.0 && wall > maxWall) {
      std::fprintf(stderr, "FAIL: %s took %.1f s (budget %.1f s)\n", what,
                   wall, maxWall);
      budgetsOk = false;
    }
    const double kibPerNode =
        static_cast<double>(peakRssBytes()) / 1024.0 /
        static_cast<double>(population);
    if (maxKibPerNode > 0.0 && kibPerNode > maxKibPerNode) {
      std::fprintf(stderr,
                   "FAIL: %s peaked at %.1f KiB/node (budget %.1f KiB/node)\n",
                   what, kibPerNode, maxKibPerNode);
      budgetsOk = false;
    }
  };

  // --- shard scaling curve (and the determinism check) ---------------------
  const trace::CityParams curveCity = cityParams(curveNodes, districts, days);
  struct CurvePoint {
    std::uint32_t shards;
    RunStats stats;
    bool identical;
  };
  std::vector<CurvePoint> curve;
  RunStats reference;
  bool identicalOk = true;
  const std::vector<std::uint32_t> shardSettings =
      smoke ? std::vector<std::uint32_t>{1, headlineShards}
            : std::vector<std::uint32_t>{1, 2, 4, 8, 16};
  for (const std::uint32_t shards : shardSettings) {
    std::fprintf(stderr, "curve: %u nodes, shards=%u, threads=%u ... ",
                 curveNodes, shards, threads);
    const RunStats stats = runCity(curveCity, shards, threads);
    const bool identical =
        shards == 1 || resultsIdentical(reference.result, stats.result);
    if (shards == 1) reference = stats;
    if (!identical) {
      std::fprintf(stderr, "\nFAIL: shards=%u diverged from shards=1\n",
                   shards);
      identicalOk = false;
    }
    std::fprintf(stderr, "%.1f s, %llu contacts%s\n", stats.wallSeconds,
                 static_cast<unsigned long long>(stats.contacts),
                 identical ? "" : " [DIVERGED]");
    enforce("curve run", stats.wallSeconds, curveNodes);
    curve.push_back({shards, stats, identical});
  }

  // --- headline run (runs last so peak RSS reflects it) --------------------
  RunStats headline;
  if (!smoke) {
    std::fprintf(stderr, "headline: %u nodes, %d day(s), shards=%u ... ",
                 nodes, days, headlineShards);
    const trace::CityParams bigCity = cityParams(nodes, districts, days);
    headline = runCity(bigCity, headlineShards, threads);
    std::fprintf(stderr, "%.1f s, %llu contacts\n", headline.wallSeconds,
                 static_cast<unsigned long long>(headline.contacts));
    enforce("headline run", headline.wallSeconds, nodes);
  }

  const std::size_t peakRss = peakRssBytes();
  const std::size_t population = smoke ? curveNodes : nodes;

  std::FILE* out = std::fopen(jsonPath.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", jsonPath.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"name\": \"sharded streaming engine at city scale\",\n");
  std::fprintf(out, "  \"date\": \"%s\",\n", utcDate().c_str());
  std::fprintf(out, "  \"environment\": {\n");
  std::fprintf(out, "    \"threads\": %u,\n", threads);
  std::fprintf(out, "    \"usable_cores\": %u,\n", defaultThreadCount());
  std::fprintf(out,
               "    \"note\": \"shards are a scheduling knob: results are "
               "checked byte-identical to shards=1 at every setting; on a "
               "single-core host the curve shows scheduling overhead only\"\n");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"city\": {\n");
  std::fprintf(out, "    \"districts\": %u,\n", districts);
  std::fprintf(out, "    \"days\": %d,\n", days);
  std::fprintf(out, "    \"protocol\": \"mbt-q\",\n");
  std::fprintf(out, "    \"streaming\": true\n");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"shard_curve\": {\n");
  std::fprintf(out, "    \"nodes\": %u,\n", curveNodes);
  std::fprintf(out, "    \"points\": [\n");
  for (std::size_t i = 0; i < curve.size(); ++i) {
    const CurvePoint& p = curve[i];
    std::fprintf(out,
                 "      {\"shards\": %u, \"wall_seconds\": %.2f, "
                 "\"contacts\": %llu, \"contacts_per_second\": %.0f, "
                 "\"identical_to_shards1\": %s}%s\n",
                 p.shards, p.stats.wallSeconds,
                 static_cast<unsigned long long>(p.stats.contacts),
                 static_cast<double>(p.stats.contacts) / p.stats.wallSeconds,
                 p.identical ? "true" : "false",
                 i + 1 < curve.size() ? "," : "");
  }
  std::fprintf(out, "    ]\n");
  std::fprintf(out, "  },\n");
  if (!smoke) {
    std::fprintf(out, "  \"headline\": {\n");
    std::fprintf(out, "    \"nodes\": %u,\n", nodes);
    std::fprintf(out, "    \"shards\": %u,\n", headlineShards);
    std::fprintf(out, "    \"wall_seconds\": %.2f,\n", headline.wallSeconds);
    std::fprintf(out, "    \"contacts\": %llu,\n",
                 static_cast<unsigned long long>(headline.contacts));
    std::fprintf(out, "    \"contacts_per_second\": %.0f,\n",
                 static_cast<double>(headline.contacts) /
                     headline.wallSeconds);
    std::fprintf(out, "    \"nodes_per_second\": %.0f,\n",
                 static_cast<double>(nodes) / headline.wallSeconds);
    std::fprintf(out, "    \"files_published\": %llu,\n",
                 static_cast<unsigned long long>(
                     headline.result.totals.filesPublished));
    std::fprintf(out, "    \"file_delivery_ratio\": %.4f,\n",
                 headline.result.delivery.fileRatio);
    std::fprintf(out, "    \"metadata_delivery_ratio\": %.4f\n",
                 headline.result.delivery.metadataRatio);
    std::fprintf(out, "  },\n");
  }
  std::fprintf(out, "  \"memory\": {\n");
  std::fprintf(out, "    \"peak_rss_bytes\": %zu,\n", peakRss);
  std::fprintf(out, "    \"peak_bytes_per_node\": %.0f\n",
               static_cast<double>(peakRss) /
                   static_cast<double>(population));
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"deterministic_across_shards\": %s\n",
               identicalOk ? "true" : "false");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::fprintf(stderr, "wrote %s (peak RSS %.1f MiB)\n", jsonPath.c_str(),
               static_cast<double>(peakRss) / (1024.0 * 1024.0));

  return (identicalOk && budgetsOk) ? 0 : 1;
}
