// Routing substrate evaluation: the classic store-carry-forward protocol
// family (direct / spray-and-wait / PRoPHET / epidemic) against the
// space-time-graph oracle, on the DieselNet-style and random-waypoint
// traces. Not a paper figure — it validates the substrate the file-sharing
// system builds on and shows the delivery/overhead trade-off the paper's
// Section II surveys.
#include <iostream>
#include <vector>

#include "src/routing/routing.hpp"
#include "src/trace/dieselnet.hpp"
#include "src/trace/mobility.hpp"
#include "src/util/csv.hpp"

using namespace hdtn;

namespace {

void runFamily(const char* name, const trace::ContactTrace& trace,
               SimTime horizon, Duration ttl) {
  Rng rng(17);
  const auto workload =
      routing::makeUniformWorkload(300, trace.nodeCount(), horizon, ttl, rng);

  Table table({"protocol", "delivery ratio", "mean delay (h)", "forwards",
               "overhead (fw/delivered)"});
  const routing::RoutingAlgorithm algorithms[] = {
      routing::RoutingAlgorithm::kDirectDelivery,
      routing::RoutingAlgorithm::kSprayAndWait,
      routing::RoutingAlgorithm::kProphet,
      routing::RoutingAlgorithm::kEpidemic,
  };
  for (auto algorithm : algorithms) {
    routing::RoutingParams params;
    params.algorithm = algorithm;
    const auto result = routing::simulateRouting(trace, workload, params);
    table.addRow({routing::routingAlgorithmName(algorithm),
                  Table::formatDouble(result.deliveryRatio, 3),
                  Table::formatDouble(result.meanDelay / 3600.0, 2),
                  std::to_string(result.forwards),
                  Table::formatDouble(result.overheadRatio, 2)});
  }
  const auto oracle = routing::oracleRouting(trace, workload);
  table.addRow({"oracle (space-time)",
                Table::formatDouble(oracle.deliveryRatio, 3),
                Table::formatDouble(oracle.meanDelay / 3600.0, 2), "-", "-"});

  std::cout << "--- " << name << " (" << trace.nodeCount() << " nodes, "
            << trace.contactCount() << " contacts, 300 messages) ---\n";
  table.writeAligned(std::cout);
  std::cout << "\nCSV:\n";
  table.writeCsv(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "=== routing: store-carry-forward baselines vs the "
               "space-time oracle ===\n\n";

  trace::DieselNetParams diesel;
  diesel.buses = 30;
  diesel.routes = 6;
  diesel.days = 10;
  diesel.seed = 3;
  runFamily("dieselnet", trace::generateDieselNet(diesel), 7 * kDay,
            3 * kDay);

  trace::RandomWaypointParams rwp;
  rwp.nodes = 40;
  rwp.duration = 12 * kHour;
  rwp.radioRange = 40.0;
  rwp.seed = 3;
  runFamily("random-waypoint", trace::generateRandomWaypoint(rwp), 8 * kHour,
            4 * kHour);

  std::cout << "expected shape: delivery direct <= spray <= prophet-ish <= "
               "epidemic <= oracle;\noverhead direct < spray < epidemic.\n";
  return 0;
}
