// fig2d: DieselNet: delivery ratio vs metadata per contact.
#include "bench/harness.hpp"

int main(int argc, char** argv) {
  using namespace hdtn;
  bench::FigureSpec spec;
  spec.id = "fig2d";
  spec.title = "DieselNet: delivery ratio vs metadata per contact";
  spec.xLabel = "metadata_per_contact";
  spec.xs = {1, 2, 3, 5, 7, 10};
  spec.makeTrace = [](double, std::uint64_t seed) {
    return bench::defaultDieselNet(seed);
  };
  spec.base = bench::dieselNetBaseParams();
  spec.apply = [](core::EngineParams& p, double x) {
    p.metadataPerContact = static_cast<int>(x);
  };
  return bench::runFigure(std::move(spec), argc, argv);
}
