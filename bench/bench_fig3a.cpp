// fig3a: NUS: delivery ratio vs % Internet-access nodes.
#include "bench/harness.hpp"

int main(int argc, char** argv) {
  using namespace hdtn;
  bench::FigureSpec spec;
  spec.id = "fig3a";
  spec.title = "NUS: delivery ratio vs % Internet-access nodes";
  spec.xLabel = "access_fraction";
  spec.xs = bench::accessFractionSweep();
  spec.makeTrace = [](double, std::uint64_t seed) {
    return bench::defaultNus(seed);
  };
  spec.base = bench::nusBaseParams();
  spec.apply = [](core::EngineParams& p, double x) {
    p.internetAccessFraction = x;
  };
  return bench::runFigure(std::move(spec), argc, argv);
}
