// Robustness sweep: delivery ratio AND mean file delay vs the per-message
// loss rate, for MBT / MBT-Q / MBT-QM on the NUS-style trace.
//
// The paper evaluates the protocols over clean traces; this panel asks how
// gracefully each degrades as the DTN channel gets lossy (faults are drawn
// from the deterministic fault plan, see docs/FAULTS.md). Unlike the
// figure benches this one also reports delays — under loss a protocol can
// hold its delivery ratio while its delay balloons, and the ratio alone
// would hide that.
//
//   bench_robustness [--seeds=N] [--threads=N] [--json[=PATH]]
//                    [--scenario=FILE] [--supervise[=JOURNAL]]
//                    [--point-timeout=S] [--max-attempts=N]
//                    [--checkpoint-every=S]
//
// --scenario replaces the base engine parameters and the trace with the
// scenario's (the loss-rate sweep still overrides the scenario's own
// loss-rate); by default the run uses the shared NUS stand-in. --supervise
// runs every point in a crash-isolated child process with retry-with-resume
// and a completed-point journal (see docs/CHECKPOINT.md).
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench/harness.hpp"
#include "bench/supervisor.hpp"
#include "src/core/scenario.hpp"
#include "src/util/ascii_chart.hpp"
#include "src/util/csv.hpp"
#include "src/util/parallel.hpp"

using namespace hdtn;

namespace {

constexpr core::ProtocolKind kProtocols[] = {core::ProtocolKind::kMbt,
                                             core::ProtocolKind::kMbtQ,
                                             core::ProtocolKind::kMbtQm};

/// Engine parameters for one sweep point, exactly as the in-process task
/// loop builds them — the supervised child must reproduce them bit for bit.
/// `seed` is 1-based.
core::EngineParams paramsForPoint(const core::EngineParams& base,
                                  const std::vector<double>& lossRates,
                                  std::size_t xi, std::size_t pi, int seed) {
  core::EngineParams params = base;
  params.protocol.kind = kProtocols[pi];
  params.seed = static_cast<std::uint64_t>(seed) * 1000003u;
  params.faults.messageLossRate = lossRates[xi];
  return params;
}

/// Child mode (--point=robustness:<xi>:<pi>:<seed>): runs one point with
/// periodic checkpoints and prints its RESULT line
/// (file ratio, metadata ratio, mean file delay in hours).
int runPoint(const bench::CommonArgs& common, const core::EngineParams& base,
             const core::TraceSpec& traceSpec,
             const std::vector<double>& lossRates) {
  std::size_t xi = 0, pi = 0;
  int seed = 0;
  {
    std::istringstream in(common.pointKey);
    std::string figure, xiText, piText, seedText;
    if (!std::getline(in, figure, ':') || !std::getline(in, xiText, ':') ||
        !std::getline(in, piText, ':') || !std::getline(in, seedText) ||
        figure != "robustness") {
      std::cerr << "bad --point key '" << common.pointKey
                << "' (expected robustness:<xi>:<pi>:<seed>)\n";
      return 2;
    }
    xi = static_cast<std::size_t>(std::atoll(xiText.c_str()));
    pi = static_cast<std::size_t>(std::atoll(piText.c_str()));
    seed = std::atoi(seedText.c_str());
    if (xi >= lossRates.size() || pi >= 3 || seed < 1) {
      std::cerr << "--point key '" << common.pointKey
                << "' is out of range\n";
      return 2;
    }
  }
  core::TraceSpec spec = traceSpec;
  spec.seed = static_cast<std::uint64_t>(seed);
  std::string traceError;
  const auto trace = spec.build(&traceError);
  if (!trace) {
    std::cerr << "trace: " << traceError << "\n";
    return 1;
  }
  const auto result = bench::runWithCheckpoints(
      *trace, paramsForPoint(base, lossRates, xi, pi, seed),
      common.pointCheckpoint, common.checkpointEvery);
  std::cout << bench::formatResultLine(
      common.pointKey,
      {result.delivery.fileRatio, result.delivery.metadataRatio,
       result.delivery.meanFileDelaySeconds / 3600.0});
  return 0;
}

/// Parent mode (--supervise): one crash-isolated child per point, with
/// retry-with-resume and journal skip. Fills the same per-task arrays the
/// in-process loop produces.
bool runSupervised(const bench::CommonArgs& common, const char* selfPath,
                   int seeds, std::size_t points,
                   std::vector<double>& fileRatio,
                   std::vector<double>& mdRatio,
                   std::vector<double>& fileDelayH) {
  bench::SupervisorOptions options;
  options.journalPath = common.superviseJournal;
  options.pointTimeoutSeconds = common.pointTimeoutSeconds;
  options.maxAttempts = common.maxAttempts;
  bench::SweepJournal journal(options.journalPath);
  journal.load();
  std::cout << "supervised sweep: journal " << journal.path() << " ("
            << journal.size() << " point(s) already done), timeout "
            << options.pointTimeoutSeconds << " s, " << options.maxAttempts
            << " attempt(s) per point\n";
  const std::size_t total = points * 3 * static_cast<std::size_t>(seeds);
  std::size_t done = 0;
  for (std::size_t xi = 0; xi < points; ++xi) {
    for (std::size_t pi = 0; pi < 3; ++pi) {
      for (int seed = 1; seed <= seeds; ++seed) {
        const std::string key = "robustness:" + std::to_string(xi) + ":" +
                                std::to_string(pi) + ":" +
                                std::to_string(seed);
        const bool journaled = journal.contains(key);
        std::string checkpoint =
            common.superviseJournal + "." + key + ".ckpt";
        for (char& c : checkpoint) {
          if (c == ':') c = '_';
        }
        std::vector<std::string> childArgv = {
            selfPath, "--point=" + key, "--point-checkpoint=" + checkpoint,
            "--checkpoint-every=" + std::to_string(common.checkpointEvery)};
        if (!common.scenarioPath.empty()) {
          childArgv.push_back("--scenario=" + common.scenarioPath);
        }
        std::string error;
        const auto values = bench::superviseOnePoint(
            options, journal, key, childArgv, checkpoint, &error);
        if (!values) {
          std::cerr << "supervise: " << error << "\n";
          return false;
        }
        if (values->size() < 3) {
          std::cerr << "supervise: point " << key
                    << " returned a malformed RESULT line\n";
          return false;
        }
        const std::size_t task =
            (xi * 3 + pi) * static_cast<std::size_t>(seeds) +
            static_cast<std::size_t>(seed - 1);
        fileRatio[task] = (*values)[0];
        mdRatio[task] = (*values)[1];
        fileDelayH[task] = (*values)[2];
        ++done;
        std::cout << "  [" << done << "/" << total << "] " << key
                  << (journaled ? " (journaled)" : " ok") << "\n";
        std::error_code ec;
        std::filesystem::remove(checkpoint, ec);
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::CommonArgs common =
      bench::parseCommonArgs("robustness", 3, argc, argv);
  const std::vector<double> lossRates = {0.0,  0.05, 0.1, 0.2,
                                         0.35, 0.5,  0.7};

  core::EngineParams base = bench::nusBaseParams();
  core::TraceSpec traceSpec;
  traceSpec.family = "nus";
  traceSpec.students = 160;
  traceSpec.courses = 32;
  traceSpec.days = 12;
  if (!common.scenarioPath.empty()) {
    std::vector<std::string> errors;
    const auto scenario = core::Scenario::fromFile(common.scenarioPath,
                                                   &errors);
    if (!scenario) {
      for (const std::string& error : errors) {
        std::cerr << common.scenarioPath << ": " << error << "\n";
      }
      return 2;
    }
    base = scenario->params;
    traceSpec = scenario->trace;
    std::cout << "scenario: " << scenario->name << " ("
              << common.scenarioPath << ")\n";
  }

  if (!common.pointKey.empty()) {
    return runPoint(common, base, traceSpec, lossRates);
  }

  const int seeds = common.seeds;
  const unsigned threads = common.threads;
  const bool supervised = !common.superviseJournal.empty();
  std::cout << "=== robustness: delivery and delay vs message loss ===\n"
            << "x-axis: loss rate; " << seeds
            << " seed(s) per point; protocols: MBT, MBT-Q, MBT-QM; "
            << threads << " thread(s)\n\n";

  const std::size_t points = lossRates.size();
  std::vector<double> fileRatio(points * 3 * static_cast<std::size_t>(seeds));
  std::vector<double> mdRatio(fileRatio.size());
  std::vector<double> fileDelayH(fileRatio.size());
  if (supervised) {
    if (!runSupervised(common, argv[0], seeds, points, fileRatio, mdRatio,
                       fileDelayH)) {
      return 1;
    }
  } else {
    // Traces first (read-only, shared across the sweep), one per seed.
    std::vector<trace::ContactTrace> traces(
        static_cast<std::size_t>(seeds));
    std::vector<std::string> traceErrors(traces.size());
    parallelFor(traces.size(), threads, [&](std::size_t i) {
      core::TraceSpec spec = traceSpec;
      spec.seed = i + 1;
      if (auto built = spec.build(&traceErrors[i])) traces[i] = *built;
    });
    for (const std::string& error : traceErrors) {
      if (!error.empty()) {
        std::cerr << "trace: " << error << "\n";
        return 1;
      }
    }

    parallelFor(fileRatio.size(), threads, [&](std::size_t task) {
      const std::size_t xi = task / (3 * static_cast<std::size_t>(seeds));
      const std::size_t rest = task % (3 * static_cast<std::size_t>(seeds));
      const std::size_t pi = rest / static_cast<std::size_t>(seeds);
      const std::size_t seed = rest % static_cast<std::size_t>(seeds);
      const auto result = core::runSimulation(
          traces[seed], paramsForPoint(base, lossRates, xi, pi,
                                       static_cast<int>(seed) + 1));
      fileRatio[task] = result.delivery.fileRatio;
      mdRatio[task] = result.delivery.metadataRatio;
      fileDelayH[task] = result.delivery.meanFileDelaySeconds / 3600.0;
    });
  }

  std::vector<std::vector<double>> ratioSeries(3), delaySeries(3);
  Table table({"loss rate", "MBT file", "MBT-Q file", "MBT-QM file",
               "MBT delay h", "MBT-Q delay h", "MBT-QM delay h"});
  for (std::size_t xi = 0; xi < points; ++xi) {
    std::vector<double> ratioMeans(3, 0.0), delayMeans(3, 0.0);
    for (std::size_t pi = 0; pi < 3; ++pi) {
      double ratioSum = 0.0, delaySum = 0.0;
      for (int seed = 0; seed < seeds; ++seed) {
        const std::size_t task =
            (xi * 3 + pi) * static_cast<std::size_t>(seeds) +
            static_cast<std::size_t>(seed);
        ratioSum += fileRatio[task];
        delaySum += fileDelayH[task];
      }
      ratioMeans[pi] = ratioSum / seeds;
      delayMeans[pi] = delaySum / seeds;
      ratioSeries[pi].push_back(ratioMeans[pi]);
      delaySeries[pi].push_back(delayMeans[pi]);
    }
    table.addRow({lossRates[xi], ratioMeans[0], ratioMeans[1], ratioMeans[2],
                  delayMeans[0], delayMeans[1], delayMeans[2]});
  }

  table.writeAligned(std::cout);
  std::cout << "\nCSV:\n";
  table.writeCsv(std::cout);
  std::cout << "\n";

  const char glyphs[3] = {'*', 'o', '.'};
  AsciiChart ratioChart("robustness: file delivery ratio vs loss rate",
                        lossRates);
  AsciiChart delayChart("robustness: mean file delay (h) vs loss rate",
                        lossRates);
  for (std::size_t pi = 0; pi < 3; ++pi) {
    const char* name = core::protocolName(kProtocols[pi]);
    ratioChart.addSeries({name, glyphs[pi], ratioSeries[pi]});
    delayChart.addSeries({name, glyphs[pi], delaySeries[pi]});
  }
  std::cout << ratioChart.render() << "\n" << delayChart.render()
            << std::endl;

  if (!common.jsonPath.empty()) {
    std::ofstream json(common.jsonPath);
    if (!json) {
      std::cerr << "cannot write " << common.jsonPath << "\n";
      return 1;
    }
    json << "{\n"
         << "  \"figure\": \"robustness\",\n"
         << "  \"title\": \"delivery and delay vs message loss\",\n"
         << "  \"x_label\": \"loss rate\",\n"
         << "  \"seeds\": " << seeds << ",\n"
         << "  \"series\": [\n";
    for (std::size_t pi = 0; pi < 3; ++pi) {
      json << "    {\"protocol\": \"" << core::protocolName(kProtocols[pi])
           << "\", \"points\": [";
      for (std::size_t xi = 0; xi < points; ++xi) {
        const std::size_t firstTask =
            (xi * 3 + pi) * static_cast<std::size_t>(seeds);
        double mdSum = 0.0;
        for (int seed = 0; seed < seeds; ++seed) {
          mdSum += mdRatio[firstTask + static_cast<std::size_t>(seed)];
        }
        json << (xi == 0 ? "" : ", ") << "{\"x\": " << lossRates[xi]
             << ", \"metadata_ratio\": " << mdSum / seeds
             << ", \"file_ratio\": " << ratioSeries[pi][xi]
             << ", \"mean_file_delay_h\": " << delaySeries[pi][xi] << "}";
      }
      json << "]}" << (pi + 1 < 3 ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::cout << "json written to " << common.jsonPath << std::endl;
  }
  return 0;
}
