// Robustness sweep: delivery ratio AND mean file delay vs the per-message
// loss rate, for MBT / MBT-Q / MBT-QM on the NUS-style trace.
//
// The paper evaluates the protocols over clean traces; this panel asks how
// gracefully each degrades as the DTN channel gets lossy (faults are drawn
// from the deterministic fault plan, see docs/FAULTS.md). Unlike the
// figure benches this one also reports delays — under loss a protocol can
// hold its delivery ratio while its delay balloons, and the ratio alone
// would hide that.
//
//   bench_robustness [--seeds=N] [--threads=N] [--json[=PATH]]
//                    [--scenario=FILE]
//
// --scenario replaces the base engine parameters and the trace with the
// scenario's (the loss-rate sweep still overrides the scenario's own
// loss-rate); by default the run uses the shared NUS stand-in.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <vector>

#include "bench/harness.hpp"
#include "src/core/scenario.hpp"
#include "src/util/ascii_chart.hpp"
#include "src/util/csv.hpp"
#include "src/util/parallel.hpp"

using namespace hdtn;

namespace {

constexpr core::ProtocolKind kProtocols[] = {core::ProtocolKind::kMbt,
                                             core::ProtocolKind::kMbtQ,
                                             core::ProtocolKind::kMbtQm};

}  // namespace

int main(int argc, char** argv) {
  const bench::CommonArgs common =
      bench::parseCommonArgs("robustness", 3, argc, argv);
  const std::vector<double> lossRates = {0.0,  0.05, 0.1, 0.2,
                                         0.35, 0.5,  0.7};

  core::EngineParams base = bench::nusBaseParams();
  core::TraceSpec traceSpec;
  traceSpec.family = "nus";
  traceSpec.students = 160;
  traceSpec.courses = 32;
  traceSpec.days = 12;
  if (!common.scenarioPath.empty()) {
    std::vector<std::string> errors;
    const auto scenario = core::Scenario::fromFile(common.scenarioPath,
                                                   &errors);
    if (!scenario) {
      for (const std::string& error : errors) {
        std::cerr << common.scenarioPath << ": " << error << "\n";
      }
      return 2;
    }
    base = scenario->params;
    traceSpec = scenario->trace;
    std::cout << "scenario: " << scenario->name << " ("
              << common.scenarioPath << ")\n";
  }

  const int seeds = common.seeds;
  const unsigned threads = common.threads;
  std::cout << "=== robustness: delivery and delay vs message loss ===\n"
            << "x-axis: loss rate; " << seeds
            << " seed(s) per point; protocols: MBT, MBT-Q, MBT-QM; "
            << threads << " thread(s)\n\n";

  // Traces first (read-only, shared across the sweep), one per seed.
  std::vector<trace::ContactTrace> traces(
      static_cast<std::size_t>(seeds));
  std::vector<std::string> traceErrors(traces.size());
  parallelFor(traces.size(), threads, [&](std::size_t i) {
    core::TraceSpec spec = traceSpec;
    spec.seed = i + 1;
    if (auto built = spec.build(&traceErrors[i])) traces[i] = *built;
  });
  for (const std::string& error : traceErrors) {
    if (!error.empty()) {
      std::cerr << "trace: " << error << "\n";
      return 1;
    }
  }

  const std::size_t points = lossRates.size();
  std::vector<double> fileRatio(points * 3 * static_cast<std::size_t>(seeds));
  std::vector<double> mdRatio(fileRatio.size());
  std::vector<double> fileDelayH(fileRatio.size());
  parallelFor(fileRatio.size(), threads, [&](std::size_t task) {
    const std::size_t xi = task / (3 * static_cast<std::size_t>(seeds));
    const std::size_t rest = task % (3 * static_cast<std::size_t>(seeds));
    const std::size_t pi = rest / static_cast<std::size_t>(seeds);
    const std::size_t seed = rest % static_cast<std::size_t>(seeds);
    core::EngineParams params = base;
    params.protocol.kind = kProtocols[pi];
    params.seed = (seed + 1) * 1000003u;
    params.faults.messageLossRate = lossRates[xi];
    const auto result = core::runSimulation(traces[seed], params);
    fileRatio[task] = result.delivery.fileRatio;
    mdRatio[task] = result.delivery.metadataRatio;
    fileDelayH[task] = result.delivery.meanFileDelaySeconds / 3600.0;
  });

  std::vector<std::vector<double>> ratioSeries(3), delaySeries(3);
  Table table({"loss rate", "MBT file", "MBT-Q file", "MBT-QM file",
               "MBT delay h", "MBT-Q delay h", "MBT-QM delay h"});
  for (std::size_t xi = 0; xi < points; ++xi) {
    std::vector<double> ratioMeans(3, 0.0), delayMeans(3, 0.0);
    for (std::size_t pi = 0; pi < 3; ++pi) {
      double ratioSum = 0.0, delaySum = 0.0;
      for (int seed = 0; seed < seeds; ++seed) {
        const std::size_t task =
            (xi * 3 + pi) * static_cast<std::size_t>(seeds) +
            static_cast<std::size_t>(seed);
        ratioSum += fileRatio[task];
        delaySum += fileDelayH[task];
      }
      ratioMeans[pi] = ratioSum / seeds;
      delayMeans[pi] = delaySum / seeds;
      ratioSeries[pi].push_back(ratioMeans[pi]);
      delaySeries[pi].push_back(delayMeans[pi]);
    }
    table.addRow({lossRates[xi], ratioMeans[0], ratioMeans[1], ratioMeans[2],
                  delayMeans[0], delayMeans[1], delayMeans[2]});
  }

  table.writeAligned(std::cout);
  std::cout << "\nCSV:\n";
  table.writeCsv(std::cout);
  std::cout << "\n";

  const char glyphs[3] = {'*', 'o', '.'};
  AsciiChart ratioChart("robustness: file delivery ratio vs loss rate",
                        lossRates);
  AsciiChart delayChart("robustness: mean file delay (h) vs loss rate",
                        lossRates);
  for (std::size_t pi = 0; pi < 3; ++pi) {
    const char* name = core::protocolName(kProtocols[pi]);
    ratioChart.addSeries({name, glyphs[pi], ratioSeries[pi]});
    delayChart.addSeries({name, glyphs[pi], delaySeries[pi]});
  }
  std::cout << ratioChart.render() << "\n" << delayChart.render()
            << std::endl;

  if (!common.jsonPath.empty()) {
    std::ofstream json(common.jsonPath);
    if (!json) {
      std::cerr << "cannot write " << common.jsonPath << "\n";
      return 1;
    }
    json << "{\n"
         << "  \"figure\": \"robustness\",\n"
         << "  \"title\": \"delivery and delay vs message loss\",\n"
         << "  \"x_label\": \"loss rate\",\n"
         << "  \"seeds\": " << seeds << ",\n"
         << "  \"series\": [\n";
    for (std::size_t pi = 0; pi < 3; ++pi) {
      json << "    {\"protocol\": \"" << core::protocolName(kProtocols[pi])
           << "\", \"points\": [";
      for (std::size_t xi = 0; xi < points; ++xi) {
        const std::size_t firstTask =
            (xi * 3 + pi) * static_cast<std::size_t>(seeds);
        double mdSum = 0.0;
        for (int seed = 0; seed < seeds; ++seed) {
          mdSum += mdRatio[firstTask + static_cast<std::size_t>(seed)];
        }
        json << (xi == 0 ? "" : ", ") << "{\"x\": " << lossRates[xi]
             << ", \"metadata_ratio\": " << mdSum / seeds
             << ", \"file_ratio\": " << ratioSeries[pi][xi]
             << ", \"mean_file_delay_h\": " << delaySeries[pi][xi] << "}";
      }
      json << "]}" << (pi + 1 < 3 ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::cout << "json written to " << common.jsonPath << std::endl;
  }
  return 0;
}
