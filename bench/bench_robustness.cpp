// Robustness sweep: delivery ratio AND mean file delay vs the per-message
// loss rate, for MBT / MBT-Q / MBT-QM on the NUS-style trace.
//
// The paper evaluates the protocols over clean traces; this panel asks how
// gracefully each degrades as the DTN channel gets lossy (faults are drawn
// from the deterministic fault plan, see docs/FAULTS.md). Unlike the
// figure benches this one also reports delays — under loss a protocol can
// hold its delivery ratio while its delay balloons, and the ratio alone
// would hide that.
//
// Each (loss, protocol) point runs three download configurations:
//   mi == 0  baseline — selective per-piece broadcast, no recovery
//   mi == 1  +rec     — baseline plus the PR 5 self-healing layer
//   mi == 2  +coded   — RLNC coded mode (docs/CODING.md), recovery off, so
//                       the comparison isolates redundancy vs retransmission
// Coded points additionally report decode CPU as Gauss-Jordan row
// operations (EngineTotals::codedDecodeRowOps), the codec's deterministic
// work proxy.
//
// A fourth axis (docs/ADVERSARY.md) sweeps the Byzantine fraction instead
// of the loss rate: coded mode + the recovery layer, every attack enabled,
// with the verify-and-quarantine defense off vs on. It always runs
// in-process in the parent (it is small), so supervised journals keep
// their 63-point layout; results land in the "adversary_series" JSON
// section.
//
//   bench_robustness [--seeds=N] [--threads=N] [--json[=PATH]]
//                    [--scenario=FILE] [--supervise[=JOURNAL]]
//                    [--point-timeout=S] [--max-attempts=N]
//                    [--checkpoint-every=S]
//
// --scenario replaces the base engine parameters and the trace with the
// scenario's (the loss-rate sweep still overrides the scenario's own
// loss-rate); by default the run uses the shared NUS stand-in. --supervise
// runs every point in a crash-isolated child process with retry-with-resume
// and a completed-point journal (see docs/CHECKPOINT.md).
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench/harness.hpp"
#include "bench/supervisor.hpp"
#include "src/core/download_planner.hpp"
#include "src/core/scenario.hpp"
#include "src/util/ascii_chart.hpp"
#include "src/util/csv.hpp"
#include "src/util/parallel.hpp"

using namespace hdtn;

namespace {

constexpr core::ProtocolKind kProtocols[] = {core::ProtocolKind::kMbt,
                                             core::ProtocolKind::kMbtQ,
                                             core::ProtocolKind::kMbtQm};

constexpr std::size_t kModes = 3;
constexpr const char* kModeSuffix[kModes] = {"", "+rec", "+coded"};

/// The recovery configuration the `mi == 1` third of the sweep turns on:
/// retransmission, anti-entropy repair, and coordinator failover together
/// (the self-healing layer as a whole, not one knob at a time).
core::RecoveryParams sweepRecoveryParams() {
  core::RecoveryParams recovery;
  recovery.maxRetries = 2;
  recovery.retransmitBudget = 16;
  recovery.repairPerContact = 4;
  recovery.coordinatorFailover = true;
  return recovery;
}

/// Engine parameters for one sweep point, exactly as the in-process task
/// loop builds them — the supervised child must reproduce them bit for bit.
/// `mi` is the mode axis (0 = baseline, 1 = +recovery, 2 = coded); `seed`
/// is 1-based.
core::EngineParams paramsForPoint(const core::EngineParams& base,
                                  const std::vector<double>& lossRates,
                                  std::size_t xi, std::size_t pi,
                                  std::size_t mi, int seed) {
  core::EngineParams params = base;
  params.protocol.kind = kProtocols[pi];
  params.seed = static_cast<std::uint64_t>(seed) * 1000003u;
  params.faults.messageLossRate = lossRates[xi];
  params.recovery = mi == 1 ? sweepRecoveryParams() : core::RecoveryParams{};
  if (mi == 2) params.downloadMode = core::DownloadMode::kCoded;
  return params;
}

/// Child mode (--point=robustness:<xi>:<pi>:<mi>:<seed>): runs one point
/// with periodic checkpoints and prints its RESULT line (file ratio,
/// metadata ratio, mean file delay in hours, decode row operations).
int runPoint(const bench::CommonArgs& common, const core::EngineParams& base,
             const core::TraceSpec& traceSpec,
             const std::vector<double>& lossRates) {
  std::size_t xi = 0, pi = 0, mi = 0;
  int seed = 0;
  {
    std::istringstream in(common.pointKey);
    std::string figure, xiText, piText, miText, seedText;
    if (!std::getline(in, figure, ':') || !std::getline(in, xiText, ':') ||
        !std::getline(in, piText, ':') || !std::getline(in, miText, ':') ||
        !std::getline(in, seedText) || figure != "robustness") {
      std::cerr << "bad --point key '" << common.pointKey
                << "' (expected robustness:<xi>:<pi>:<mi>:<seed>)\n";
      return 2;
    }
    xi = static_cast<std::size_t>(std::atoll(xiText.c_str()));
    pi = static_cast<std::size_t>(std::atoll(piText.c_str()));
    mi = static_cast<std::size_t>(std::atoll(miText.c_str()));
    seed = std::atoi(seedText.c_str());
    if (xi >= lossRates.size() || pi >= 3 || mi >= kModes || seed < 1) {
      std::cerr << "--point key '" << common.pointKey
                << "' is out of range\n";
      return 2;
    }
  }
  core::TraceSpec spec = traceSpec;
  spec.seed = static_cast<std::uint64_t>(seed);
  std::string traceError;
  const auto trace = spec.build(&traceError);
  if (!trace) {
    std::cerr << "trace: " << traceError << "\n";
    return 1;
  }
  const auto result = bench::runWithCheckpoints(
      *trace, paramsForPoint(base, lossRates, xi, pi, mi, seed),
      common.pointCheckpoint, common.checkpointEvery);
  std::cout << bench::formatResultLine(
      common.pointKey,
      {result.delivery.fileRatio, result.delivery.metadataRatio,
       result.delivery.meanFileDelaySeconds / 3600.0,
       static_cast<double>(result.totals.codedDecodeRowOps)});
  return 0;
}

/// Parent mode (--supervise): one crash-isolated child per point, with
/// retry-with-resume and journal skip. Fills the same per-task arrays the
/// in-process loop produces.
bool runSupervised(const bench::CommonArgs& common, const char* selfPath,
                   int seeds, std::size_t points,
                   std::vector<double>& fileRatio,
                   std::vector<double>& mdRatio,
                   std::vector<double>& fileDelayH,
                   std::vector<double>& decodeRowOps) {
  bench::SupervisorOptions options;
  options.journalPath = common.superviseJournal;
  options.pointTimeoutSeconds = common.pointTimeoutSeconds;
  options.maxAttempts = common.maxAttempts;
  bench::SweepJournal journal(options.journalPath);
  journal.load();
  for (const std::string& issue : journal.issues()) {
    std::cerr << "journal replay: " << issue << "\n";
  }
  std::cout << "supervised sweep: journal " << journal.path() << " ("
            << journal.size() << " point(s) already done), timeout "
            << options.pointTimeoutSeconds << " s, " << options.maxAttempts
            << " attempt(s) per point\n";
  const std::size_t total =
      points * 3 * kModes * static_cast<std::size_t>(seeds);
  std::size_t done = 0;
  for (std::size_t xi = 0; xi < points; ++xi) {
    for (std::size_t pi = 0; pi < 3; ++pi) {
      for (std::size_t mi = 0; mi < kModes; ++mi) {
        for (int seed = 1; seed <= seeds; ++seed) {
          const std::string key = "robustness:" + std::to_string(xi) + ":" +
                                  std::to_string(pi) + ":" +
                                  std::to_string(mi) + ":" +
                                  std::to_string(seed);
          const bool journaled = journal.contains(key);
          std::string checkpoint =
              common.superviseJournal + "." + key + ".ckpt";
          for (char& c : checkpoint) {
            if (c == ':') c = '_';
          }
          std::vector<std::string> childArgv = {
              selfPath, "--point=" + key, "--point-checkpoint=" + checkpoint,
              "--checkpoint-every=" + std::to_string(common.checkpointEvery)};
          if (!common.scenarioPath.empty()) {
            childArgv.push_back("--scenario=" + common.scenarioPath);
          }
          std::string error;
          const auto values = bench::superviseOnePoint(
              options, journal, key, childArgv, checkpoint, &error);
          if (!values) {
            std::cerr << "supervise: " << error << "\n";
            return false;
          }
          if (values->size() < 3) {
            std::cerr << "supervise: point " << key
                      << " returned a malformed RESULT line\n";
            return false;
          }
          const std::size_t task =
              ((xi * 3 + pi) * kModes + mi) *
                  static_cast<std::size_t>(seeds) +
              static_cast<std::size_t>(seed - 1);
          fileRatio[task] = (*values)[0];
          mdRatio[task] = (*values)[1];
          fileDelayH[task] = (*values)[2];
          // Journals written before the coded axis carry 3-value lines;
          // treat the missing column as zero row ops.
          decodeRowOps[task] = values->size() >= 4 ? (*values)[3] : 0.0;
          ++done;
          std::cout << "  [" << done << "/" << total << "] " << key
                    << (journaled ? " (journaled)" : " ok") << "\n";
          std::error_code ec;
          std::filesystem::remove(checkpoint, ec);
        }
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::CommonArgs common =
      bench::parseCommonArgs("robustness", 3, argc, argv);
  const std::vector<double> lossRates = {0.0, 0.05, 0.1, 0.2,
                                         0.3, 0.5,  0.7};

  core::EngineParams base = bench::nusBaseParams();
  // Multi-piece files so the coded axis has real generations to mix —
  // at one piece per file RLNC degenerates to uncoded broadcast.
  base.piecesPerFile = 4;
  core::TraceSpec traceSpec;
  traceSpec.family = "nus";
  traceSpec.students = 160;
  traceSpec.courses = 32;
  traceSpec.days = 12;
  if (!common.scenarioPath.empty()) {
    std::vector<std::string> errors;
    const auto scenario = core::Scenario::fromFile(common.scenarioPath,
                                                   &errors);
    if (!scenario) {
      for (const std::string& error : errors) {
        std::cerr << common.scenarioPath << ": " << error << "\n";
      }
      return 2;
    }
    base = scenario->params;
    traceSpec = scenario->trace;
    std::cout << "scenario: " << scenario->name << " ("
              << common.scenarioPath << ")\n";
  }

  if (!common.pointKey.empty()) {
    return runPoint(common, base, traceSpec, lossRates);
  }

  const int seeds = common.seeds;
  const unsigned threads = common.threads;
  const bool supervised = !common.superviseJournal.empty();
  std::cout << "=== robustness: delivery and delay vs message loss ===\n"
            << "x-axis: loss rate; " << seeds
            << " seed(s) per point; protocols: MBT, MBT-Q, MBT-QM; "
            << "modes: baseline / +rec / +coded per point; " << threads
            << " thread(s)\n\n";

  const std::size_t points = lossRates.size();
  std::vector<double> fileRatio(points * 3 * kModes *
                                static_cast<std::size_t>(seeds));
  std::vector<double> mdRatio(fileRatio.size());
  std::vector<double> fileDelayH(fileRatio.size());
  std::vector<double> decodeRowOps(fileRatio.size());
  if (supervised) {
    if (!runSupervised(common, argv[0], seeds, points, fileRatio, mdRatio,
                       fileDelayH, decodeRowOps)) {
      return 1;
    }
  } else {
    // Traces first (read-only, shared across the sweep), one per seed.
    std::vector<trace::ContactTrace> traces(
        static_cast<std::size_t>(seeds));
    std::vector<std::string> traceErrors(traces.size());
    parallelFor(traces.size(), threads, [&](std::size_t i) {
      core::TraceSpec spec = traceSpec;
      spec.seed = i + 1;
      if (auto built = spec.build(&traceErrors[i])) traces[i] = *built;
    });
    for (const std::string& error : traceErrors) {
      if (!error.empty()) {
        std::cerr << "trace: " << error << "\n";
        return 1;
      }
    }

    parallelFor(fileRatio.size(), threads, [&](std::size_t task) {
      const std::size_t perPoint =
          3 * kModes * static_cast<std::size_t>(seeds);
      const std::size_t xi = task / perPoint;
      std::size_t rest = task % perPoint;
      const std::size_t pi =
          rest / (kModes * static_cast<std::size_t>(seeds));
      rest %= kModes * static_cast<std::size_t>(seeds);
      const std::size_t mi = rest / static_cast<std::size_t>(seeds);
      const std::size_t seed = rest % static_cast<std::size_t>(seeds);
      const auto result = core::runSimulation(
          traces[seed], paramsForPoint(base, lossRates, xi, pi, mi,
                                       static_cast<int>(seed) + 1));
      fileRatio[task] = result.delivery.fileRatio;
      mdRatio[task] = result.delivery.metadataRatio;
      fileDelayH[task] = result.delivery.meanFileDelaySeconds / 3600.0;
      decodeRowOps[task] =
          static_cast<double>(result.totals.codedDecodeRowOps);
    });
  }

  // Series index: pi * kModes + mi (protocol-major; baseline, +rec,
  // +coded).
  const std::size_t seriesCount = 3 * kModes;
  std::vector<std::vector<double>> ratioSeries(seriesCount),
      delaySeries(seriesCount), rowOpsSeries(seriesCount);
  std::vector<std::string> columns = {"loss rate"};
  for (std::size_t pi = 0; pi < 3; ++pi) {
    for (std::size_t mi = 0; mi < kModes; ++mi) {
      columns.push_back(std::string(core::protocolName(kProtocols[pi])) +
                        kModeSuffix[mi]);
    }
  }
  Table ratioTable(columns);
  Table delayTable(columns);
  for (std::size_t xi = 0; xi < points; ++xi) {
    std::vector<double> ratioMeans(seriesCount, 0.0);
    std::vector<double> delayMeans(seriesCount, 0.0);
    for (std::size_t pi = 0; pi < 3; ++pi) {
      for (std::size_t mi = 0; mi < kModes; ++mi) {
        double ratioSum = 0.0, delaySum = 0.0, rowOpsSum = 0.0;
        for (int seed = 0; seed < seeds; ++seed) {
          const std::size_t task =
              ((xi * 3 + pi) * kModes + mi) *
                  static_cast<std::size_t>(seeds) +
              static_cast<std::size_t>(seed);
          ratioSum += fileRatio[task];
          delaySum += fileDelayH[task];
          rowOpsSum += decodeRowOps[task];
        }
        const std::size_t si = pi * kModes + mi;
        ratioMeans[si] = ratioSum / seeds;
        delayMeans[si] = delaySum / seeds;
        ratioSeries[si].push_back(ratioMeans[si]);
        delaySeries[si].push_back(delayMeans[si]);
        rowOpsSeries[si].push_back(rowOpsSum / seeds);
      }
    }
    ratioTable.addRow({lossRates[xi], ratioMeans[0], ratioMeans[1],
                       ratioMeans[2], ratioMeans[3], ratioMeans[4],
                       ratioMeans[5], ratioMeans[6], ratioMeans[7],
                       ratioMeans[8]});
    delayTable.addRow({lossRates[xi], delayMeans[0], delayMeans[1],
                       delayMeans[2], delayMeans[3], delayMeans[4],
                       delayMeans[5], delayMeans[6], delayMeans[7],
                       delayMeans[8]});
  }

  std::cout << "file delivery ratio:\n";
  ratioTable.writeAligned(std::cout);
  std::cout << "\nmean file delay (h):\n";
  delayTable.writeAligned(std::cout);
  std::cout << "\nCSV (file delivery ratio):\n";
  ratioTable.writeCsv(std::cout);
  std::cout << "\ndecode CPU (" << core::downloadModeName(
                   core::DownloadMode::kCoded, base.protocol.scheduling)
            << " mode, mean Gauss-Jordan row ops per run):\n";
  Table rowOpsTable({"loss rate", "MBT+coded", "MBT-Q+coded",
                     "MBT-QM+coded"});
  for (std::size_t xi = 0; xi < points; ++xi) {
    rowOpsTable.addRow({lossRates[xi], rowOpsSeries[0 * kModes + 2][xi],
                        rowOpsSeries[1 * kModes + 2][xi],
                        rowOpsSeries[2 * kModes + 2][xi]});
  }
  rowOpsTable.writeAligned(std::cout);
  std::cout << "\n";

  const char glyphs[9] = {'*', 'A', 'a', 'o', 'B', 'b', '.', 'C', 'c'};
  AsciiChart ratioChart("robustness: file delivery ratio vs loss rate",
                        lossRates);
  AsciiChart delayChart("robustness: mean file delay (h) vs loss rate",
                        lossRates);
  for (std::size_t pi = 0; pi < 3; ++pi) {
    for (std::size_t mi = 0; mi < kModes; ++mi) {
      const std::size_t si = pi * kModes + mi;
      const std::string name =
          std::string(core::protocolName(kProtocols[pi])) + kModeSuffix[mi];
      ratioChart.addSeries({name, glyphs[si], ratioSeries[si]});
      delayChart.addSeries({name, glyphs[si], delaySeries[si]});
    }
  }
  std::cout << ratioChart.render() << "\n" << delayChart.render()
            << std::endl;

  // --- adversary axis: delivery vs Byzantine fraction ----------------------
  const std::vector<double> advFractions = {0.0, 0.1, 0.2, 0.3};
  const std::size_t advPoints = advFractions.size();
  const std::size_t seedsN = static_cast<std::size_t>(seeds);
  const std::size_t advTaskCount = advPoints * 3 * 2 * seedsN;
  std::vector<double> advRatio(advTaskCount), advInjected(advTaskCount),
      advDetected(advTaskCount), advPolluted(advTaskCount),
      advQuarantined(advTaskCount), advFalseQ(advTaskCount);
  {
    std::vector<trace::ContactTrace> advTraces(seedsN);
    std::vector<std::string> advTraceErrors(seedsN);
    parallelFor(seedsN, threads, [&](std::size_t i) {
      core::TraceSpec spec = traceSpec;
      spec.seed = i + 1;
      if (auto built = spec.build(&advTraceErrors[i])) {
        advTraces[i] = *built;
      }
    });
    for (const std::string& error : advTraceErrors) {
      if (!error.empty()) {
        std::cerr << "trace: " << error << "\n";
        return 1;
      }
    }
    parallelFor(advTaskCount, threads, [&](std::size_t task) {
      const std::size_t perPoint = 3 * 2 * seedsN;
      const std::size_t fi = task / perPoint;
      std::size_t rest = task % perPoint;
      const std::size_t pi = rest / (2 * seedsN);
      rest %= 2 * seedsN;
      const std::size_t di = rest / seedsN;
      const std::size_t seed = rest % seedsN;
      core::EngineParams params = base;
      params.protocol.kind = kProtocols[pi];
      params.seed = static_cast<std::uint64_t>(seed + 1) * 1000003u;
      params.downloadMode = core::DownloadMode::kCoded;
      params.recovery = sweepRecoveryParams();
      params.adversary.byzantineFraction = advFractions[fi];
      params.adversary.attacks = faults::kAllAttacks;
      params.reputation.defense = di == 1;
      const auto result = core::runSimulation(advTraces[seed], params);
      advRatio[task] = result.delivery.fileRatio;
      advInjected[task] =
          static_cast<double>(result.totals.pollutionInjected);
      advDetected[task] =
          static_cast<double>(result.totals.pollutionDetected);
      advPolluted[task] =
          static_cast<double>(result.totals.pollutedDeliveries);
      advQuarantined[task] =
          static_cast<double>(result.totals.nodesQuarantined);
      advFalseQ[task] = static_cast<double>(result.totals.falseQuarantines);
    });
  }
  const auto advMean = [&](const std::vector<double>& v, std::size_t fi,
                           std::size_t pi, std::size_t di) {
    const std::size_t first = ((fi * 3 + pi) * 2 + di) * seedsN;
    double sum = 0.0;
    for (std::size_t s = 0; s < seedsN; ++s) sum += v[first + s];
    return sum / static_cast<double>(seedsN);
  };
  std::cout << "adversary axis (coded+rec, all attacks; defense off/on):\n"
            << "file delivery ratio vs Byzantine fraction:\n";
  std::vector<std::string> advColumns = {"byz fraction"};
  for (std::size_t pi = 0; pi < 3; ++pi) {
    for (std::size_t di = 0; di < 2; ++di) {
      advColumns.push_back(std::string(core::protocolName(kProtocols[pi])) +
                           (di == 0 ? " undef" : " def"));
    }
  }
  Table advTable(advColumns);
  std::vector<std::vector<double>> advSeries(6);
  for (std::size_t fi = 0; fi < advPoints; ++fi) {
    double m[6];
    for (std::size_t pi = 0; pi < 3; ++pi) {
      for (std::size_t di = 0; di < 2; ++di) {
        m[pi * 2 + di] = advMean(advRatio, fi, pi, di);
        advSeries[pi * 2 + di].push_back(m[pi * 2 + di]);
      }
    }
    advTable.addRow(
        {advFractions[fi], m[0], m[1], m[2], m[3], m[4], m[5]});
  }
  advTable.writeAligned(std::cout);
  AsciiChart advChart(
      "robustness: file delivery ratio vs Byzantine fraction", advFractions);
  const char advGlyphs[6] = {'A', 'a', 'B', 'b', 'C', 'c'};
  for (std::size_t pi = 0; pi < 3; ++pi) {
    for (std::size_t di = 0; di < 2; ++di) {
      advChart.addSeries(
          {std::string(core::protocolName(kProtocols[pi])) +
               (di == 0 ? " undef" : " def"),
           advGlyphs[pi * 2 + di], advSeries[pi * 2 + di]});
    }
  }
  std::cout << "\n" << advChart.render() << std::endl;

  if (!common.jsonPath.empty()) {
    std::ofstream json(common.jsonPath);
    if (!json) {
      std::cerr << "cannot write " << common.jsonPath << "\n";
      return 1;
    }
    json << "{\n"
         << "  \"figure\": \"robustness\",\n"
         << "  \"title\": \"delivery and delay vs message loss\",\n"
         << "  \"x_label\": \"loss rate\",\n"
         << "  \"seeds\": " << seeds << ",\n"
         << "  \"series\": [\n";
    for (std::size_t pi = 0; pi < 3; ++pi) {
      for (std::size_t mi = 0; mi < kModes; ++mi) {
        const std::size_t si = pi * kModes + mi;
        const char* mode = mi == 0   ? "baseline"
                           : mi == 1 ? "recovery"
                                     : "coded";
        json << "    {\"protocol\": \"" << core::protocolName(kProtocols[pi])
             << "\", \"mode\": \"" << mode
             << "\", \"recovery\": " << (mi == 1 ? "true" : "false")
             << ", \"points\": [";
        for (std::size_t xi = 0; xi < points; ++xi) {
          const std::size_t firstTask =
              ((xi * 3 + pi) * kModes + mi) *
              static_cast<std::size_t>(seeds);
          double mdSum = 0.0;
          for (int seed = 0; seed < seeds; ++seed) {
            mdSum += mdRatio[firstTask + static_cast<std::size_t>(seed)];
          }
          json << (xi == 0 ? "" : ", ") << "{\"x\": " << lossRates[xi]
               << ", \"metadata_ratio\": " << mdSum / seeds
               << ", \"file_ratio\": " << ratioSeries[si][xi]
               << ", \"mean_file_delay_h\": " << delaySeries[si][xi]
               << ", \"decode_row_ops\": " << rowOpsSeries[si][xi] << "}";
        }
        json << "]}" << (si + 1 < seriesCount ? "," : "") << "\n";
      }
    }
    json << "  ],\n"
         << "  \"adversary_series\": [\n";
    for (std::size_t pi = 0; pi < 3; ++pi) {
      for (std::size_t di = 0; di < 2; ++di) {
        json << "    {\"protocol\": \"" << core::protocolName(kProtocols[pi])
             << "\", \"defense\": " << (di == 1 ? "true" : "false")
             << ", \"points\": [";
        for (std::size_t fi = 0; fi < advPoints; ++fi) {
          json << (fi == 0 ? "" : ", ") << "{\"x\": " << advFractions[fi]
               << ", \"file_ratio\": " << advMean(advRatio, fi, pi, di)
               << ", \"pollution_injected\": "
               << advMean(advInjected, fi, pi, di)
               << ", \"pollution_detected\": "
               << advMean(advDetected, fi, pi, di)
               << ", \"polluted_deliveries\": "
               << advMean(advPolluted, fi, pi, di)
               << ", \"nodes_quarantined\": "
               << advMean(advQuarantined, fi, pi, di)
               << ", \"false_quarantines\": " << advMean(advFalseQ, fi, pi, di)
               << "}";
        }
        json << "]}" << (pi * 2 + di + 1 < 6 ? "," : "") << "\n";
      }
    }
    json << "  ]\n}\n";
    std::cout << "json written to " << common.jsonPath << std::endl;
  }
  return 0;
}
