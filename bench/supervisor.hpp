// Crash-tolerant sweep supervision.
//
// A supervised sweep (bench --supervise) runs every (x, protocol, seed)
// point of a figure in a child process — the bench binary re-executing
// itself with --point=KEY — under a wall-clock timeout. A crashed or hung
// point is retried with exponential backoff up to a bounded attempt budget,
// and because each point periodically checkpoints its engine (see
// src/core/checkpoint.hpp), a retry resumes from the last checkpoint
// instead of recomputing the whole run. Completed points land in a JSONL
// journal, so re-invoking the same sweep after a supervisor crash skips
// straight past everything already done. See docs/CHECKPOINT.md.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/core/engine.hpp"
#include "src/trace/contact_trace.hpp"
#include "src/util/types.hpp"

namespace hdtn::bench {

struct SupervisorOptions {
  /// JSONL journal of completed points; loaded at startup, appended after
  /// every completed point (one line per point, flushed immediately).
  std::string journalPath;
  /// Wall-clock budget per child attempt; the child is SIGKILLed past it.
  double pointTimeoutSeconds = 600.0;
  /// Attempts per point (first run + retries).
  int maxAttempts = 3;
  /// Sleep before retry n is backoffBaseSeconds * 2^(n-1).
  double backoffBaseSeconds = 0.5;
};

/// What one child attempt did. Thin compatibility facade over
/// service::ChildOutcome — the supervisor and the sweep service share one
/// execution core (src/service/exec.hpp).
struct SubprocessResult {
  /// Process exit code; -1 when the child died to a signal or the timeout.
  int exitCode = -1;
  bool timedOut = false;
  /// Terminated by a signal (crash or our timeout kill).
  bool signaled = false;
  /// Captured stdout.
  std::string output;
};

/// Runs `argv` as a child process, captures its stdout, and SIGKILLs it
/// when it outlives `timeoutSeconds`. Delegates to service::runChild.
[[nodiscard]] SubprocessResult runSubprocess(
    const std::vector<std::string>& argv, double timeoutSeconds);

/// The completed-point journal: `{"point":"KEY","values":[...]}` JSONL.
/// load() tolerates a half-written trailing line (the supervisor may have
/// crashed mid-append); record() appends and flushes one line.
class SweepJournal {
 public:
  explicit SweepJournal(std::string path) : path_(std::move(path)) {}

  /// Reads every well-formed line of the journal file; a missing file is an
  /// empty journal. Replay problems land in issues(): a torn final line
  /// (crash mid-append) is dropped with a warning, and malformed interior
  /// entries are reported with their line numbers — neither stops replay.
  void load();
  [[nodiscard]] bool contains(const std::string& key) const {
    return done_.count(key) != 0;
  }
  /// The recorded values for `key`; nullptr when absent.
  [[nodiscard]] const std::vector<double>* values(
      const std::string& key) const;
  /// Appends one completed point and flushes.
  void record(const std::string& key, const std::vector<double>& values);
  [[nodiscard]] std::size_t size() const { return done_.size(); }
  [[nodiscard]] const std::string& path() const { return path_; }
  /// Human-readable replay problems from the last load().
  [[nodiscard]] const std::vector<std::string>& issues() const {
    return issues_;
  }

 private:
  std::string path_;
  std::map<std::string, std::vector<double>> done_;
  std::vector<std::string> issues_;
};

/// "RESULT KEY v1 v2 ...\n" — the line a --point child prints on success;
/// the supervisor greps the captured stdout for it.
[[nodiscard]] std::string formatResultLine(const std::string& key,
                                           const std::vector<double>& values);

/// Finds and parses the RESULT line for `key` in a child's output. Returns
/// false when the line is absent or malformed (crashed children usually die
/// before printing it).
[[nodiscard]] bool parseResultLine(const std::string& output,
                                   const std::string& key,
                                   std::vector<double>* values);

/// Supervises one sweep point end to end: journal hit → return recorded
/// values without running anything; otherwise attempt `childArgv` up to
/// options.maxAttempts times under the timeout, sleeping with exponential
/// backoff between attempts. Exit causes are classified the same way the
/// sweep service classifies them (service::classifyOutcome): crashes and
/// timeouts retry — resuming from the point's checkpoint — while clean
/// validation failures (exit 2, exec failure 127) are deterministic and
/// fail fast without burning the retry budget. Before the final attempt
/// the point's checkpoint file is deleted, so a checkpoint the child
/// itself cannot load (or that keeps crashing it) cannot wedge the point
/// forever. On success the values are journaled. Returns nullopt (with
/// *error set) on fail-fast or when the attempt budget is exhausted.
[[nodiscard]] std::optional<std::vector<double>> superviseOnePoint(
    const SupervisorOptions& options, SweepJournal& journal,
    const std::string& key, const std::vector<std::string>& childArgv,
    const std::string& checkpointPath, std::string* error);

/// Runs one engine to completion, checkpointing to `path` every `every`
/// simulation seconds and resuming from `path` when it holds a loadable
/// checkpoint (an unreadable one is deleted and the run starts cold — the
/// supervisor's retry already paid for the restart). This is what a
/// --point child executes.
[[nodiscard]] core::EngineResult runWithCheckpoints(
    const trace::ContactTrace& trace, const core::EngineParams& params,
    const std::string& path, Duration every);

}  // namespace hdtn::bench
