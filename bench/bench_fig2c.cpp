// fig2c: DieselNet: delivery ratio vs file TTL (days).
#include "bench/harness.hpp"

int main(int argc, char** argv) {
  using namespace hdtn;
  bench::FigureSpec spec;
  spec.id = "fig2c";
  spec.title = "DieselNet: delivery ratio vs file TTL (days)";
  spec.xLabel = "ttl_days";
  spec.xs = {1, 2, 3, 4, 5};
  spec.makeTrace = [](double, std::uint64_t seed) {
    return bench::defaultDieselNet(seed);
  };
  spec.base = bench::dieselNetBaseParams();
  spec.apply = [](core::EngineParams& p, double x) {
    p.fileTtlDays = static_cast<int>(x);
  };
  return bench::runFigure(std::move(spec), argc, argv);
}
