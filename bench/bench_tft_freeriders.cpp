// Ablation A1: tit-for-tat vs free-riders (paper Sections IV-B, V-B).
//
// Sweeps the fraction of non-access nodes that free-ride (receive but never
// transmit) on the NUS-style trace and compares cooperative scheduling
// against the tit-for-tat credit scheduler. Expected shape: free-riders hurt
// everyone (they remove capacity), but under TFT the *contributors'* file
// delivery degrades more slowly, and free-riders do measurably worse than
// contributors — the incentive the paper's credit mechanism provides.
#include <iostream>
#include <vector>

#include "bench/harness.hpp"
#include "src/core/protocol.hpp"
#include "src/util/ascii_chart.hpp"
#include "src/util/csv.hpp"

int main() {
  using namespace hdtn;
  std::cout << "=== tft_freeriders: contributors vs free-riders, "
               "cooperative vs tit-for-tat (NUS trace, MBT) ===\n\n";

  const std::vector<double> fractions = {0.0, 0.2, 0.4, 0.6, 0.8};
  const int seeds = 3;

  Table table({"free_rider_fraction", "coop contrib file",
               "coop freerider file", "tft contrib file",
               "tft freerider file"});
  std::vector<double> coopContrib, coopFree, tftContrib, tftFree;
  for (double fraction : fractions) {
    double sums[4] = {0, 0, 0, 0};
    for (int seed = 1; seed <= seeds; ++seed) {
      const auto trace = bench::defaultNus(static_cast<std::uint64_t>(seed));
      for (int mode = 0; mode < 2; ++mode) {
        core::EngineParams params = bench::nusBaseParams();
        params.protocol.kind = core::ProtocolKind::kMbt;
        params.protocol.scheduling = mode == 0
                                         ? core::Scheduling::kCooperative
                                         : core::Scheduling::kTitForTat;
        params.freeRiderFraction = fraction;
        params.seed = static_cast<std::uint64_t>(seed) * 1000003u;
        const auto result = core::runSimulation(trace, params);
        sums[2 * mode + 0] += result.contributorDelivery.fileRatio;
        sums[2 * mode + 1] += result.freeRiderDelivery.fileRatio;
      }
    }
    for (double& s : sums) s /= seeds;
    table.addRow({fraction, sums[0], sums[1], sums[2], sums[3]});
    coopContrib.push_back(sums[0]);
    coopFree.push_back(sums[1]);
    tftContrib.push_back(sums[2]);
    tftFree.push_back(sums[3]);
  }
  table.writeAligned(std::cout);
  std::cout << "\nCSV:\n";
  table.writeCsv(std::cout);
  std::cout << "\n";

  AsciiChart chart("file delivery ratio vs free-rider fraction", fractions);
  chart.addSeries({"cooperative, contributors", '*', coopContrib});
  chart.addSeries({"cooperative, free-riders", '+', coopFree});
  chart.addSeries({"tit-for-tat, contributors", 'o', tftContrib});
  chart.addSeries({"tit-for-tat, free-riders", '.', tftFree});
  std::cout << chart.render() << std::endl;
  return 0;
}
