#include "bench/harness.hpp"

#include <cstdlib>
#include <iostream>
#include <map>
#include <string_view>

#include "src/core/protocol.hpp"
#include "src/trace/dieselnet.hpp"
#include "src/trace/nus.hpp"
#include "src/trace/trace_stats.hpp"
#include "src/util/ascii_chart.hpp"
#include "src/util/csv.hpp"
#include "src/util/string_util.hpp"

namespace hdtn::bench {

using core::EngineParams;
using core::EngineResult;
using core::ProtocolKind;

namespace {

constexpr ProtocolKind kProtocols[] = {
    ProtocolKind::kMbt, ProtocolKind::kMbtQ, ProtocolKind::kMbtQm};

int resolveSeeds(int fallback, int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (hdtn::startsWith(arg, "--seeds=")) {
      return std::max(1, std::atoi(arg.substr(8).data()));
    }
  }
  if (const char* env = std::getenv("HDTN_SEEDS")) {
    return std::max(1, std::atoi(env));
  }
  return fallback;
}

}  // namespace

trace::ContactTrace defaultDieselNet(std::uint64_t seed) {
  trace::DieselNetParams params;
  params.buses = 40;
  params.routes = 8;
  params.days = 20;
  // Thinner than the generator defaults so the delivery curves stay in the
  // informative (unsaturated) range across the sweeps.
  params.sameRouteMeetingsPerDay = 1.4;
  params.connectedRouteMeetingsPerDay = 0.5;
  params.backgroundMeetingsPerDay = 0.03;
  params.seed = seed;
  return trace::generateDieselNet(params);
}

trace::ContactTrace defaultNus(std::uint64_t seed, double attendanceRate) {
  trace::NusParams params;
  params.students = 160;
  params.courses = 32;
  params.coursesPerStudent = 4;
  params.days = 12;
  params.attendanceRate = attendanceRate;
  params.seed = seed;
  return trace::generateNus(params);
}

EngineParams dieselNetBaseParams() {
  EngineParams p;
  p.frequentContactPeriod = trace::kDieselNetFrequentPeriod;
  return p;
}

EngineParams nusBaseParams() {
  EngineParams p;
  p.frequentContactPeriod = trace::kNusFrequentPeriod;
  return p;
}

std::vector<double> accessFractionSweep() {
  return {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9};
}

int runFigure(FigureSpec spec, int argc, char** argv) {
  const int seeds = resolveSeeds(spec.seeds, argc, argv);
  std::cout << "=== " << spec.id << ": " << spec.title << " ===\n"
            << "x-axis: " << spec.xLabel << "; " << seeds
            << " seed(s) per point; protocols: MBT, MBT-Q, MBT-QM\n\n";

  // Traces cached per (seed, x-if-relevant).
  std::map<std::pair<int, int>, trace::ContactTrace> traceCache;
  auto traceFor = [&](std::size_t xi, int seed) -> const trace::ContactTrace& {
    const int xKey = spec.traceDependsOnX ? static_cast<int>(xi) : -1;
    auto key = std::make_pair(seed, xKey);
    auto it = traceCache.find(key);
    if (it == traceCache.end()) {
      it = traceCache
               .emplace(key, spec.makeTrace(spec.xs[xi],
                                            static_cast<std::uint64_t>(seed)))
               .first;
    }
    return it->second;
  };

  // series[protocol] -> per-x mean ratios.
  std::vector<std::vector<double>> metadataSeries(3), fileSeries(3);

  Table table({spec.xLabel, "MBT md", "MBT-Q md", "MBT-QM md", "MBT file",
               "MBT-Q file", "MBT-QM file"});
  for (std::size_t xi = 0; xi < spec.xs.size(); ++xi) {
    const double x = spec.xs[xi];
    std::vector<double> mdMeans(3, 0.0), fileMeans(3, 0.0);
    for (std::size_t pi = 0; pi < 3; ++pi) {
      double mdSum = 0.0, fileSum = 0.0;
      for (int seed = 1; seed <= seeds; ++seed) {
        EngineParams params = spec.base;
        params.protocol.kind = kProtocols[pi];
        params.seed = static_cast<std::uint64_t>(seed) * 1000003u;
        spec.apply(params, x);
        const EngineResult result =
            core::runSimulation(traceFor(xi, seed), params);
        mdSum += result.delivery.metadataRatio;
        fileSum += result.delivery.fileRatio;
      }
      mdMeans[pi] = mdSum / seeds;
      fileMeans[pi] = fileSum / seeds;
      metadataSeries[pi].push_back(mdMeans[pi]);
      fileSeries[pi].push_back(fileMeans[pi]);
    }
    table.addRow({x, mdMeans[0], mdMeans[1], mdMeans[2], fileMeans[0],
                  fileMeans[1], fileMeans[2]});
  }

  table.writeAligned(std::cout);
  std::cout << "\nCSV:\n";
  table.writeCsv(std::cout);
  std::cout << "\n";

  const char glyphs[3] = {'*', 'o', '.'};
  AsciiChart mdChart(spec.id + ": metadata delivery ratio vs " + spec.xLabel,
                     spec.xs);
  AsciiChart fileChart(spec.id + ": file delivery ratio vs " + spec.xLabel,
                       spec.xs);
  for (std::size_t pi = 0; pi < 3; ++pi) {
    const char* name = core::protocolName(kProtocols[pi]);
    mdChart.addSeries({name, glyphs[pi], metadataSeries[pi]});
    fileChart.addSeries({name, glyphs[pi], fileSeries[pi]});
  }
  std::cout << mdChart.render() << "\n" << fileChart.render() << std::endl;
  return 0;
}

}  // namespace hdtn::bench
