#include "bench/harness.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string_view>

#include "bench/supervisor.hpp"
#include "src/core/protocol.hpp"
#include "src/core/scenario.hpp"
#include "src/obs/timeseries.hpp"
#include "src/trace/dieselnet.hpp"
#include "src/trace/nus.hpp"
#include "src/trace/trace_stats.hpp"
#include "src/util/ascii_chart.hpp"
#include "src/util/csv.hpp"
#include "src/util/parallel.hpp"
#include "src/util/string_util.hpp"

namespace hdtn::bench {

using core::EngineParams;
using core::EngineResult;
using core::ProtocolKind;

namespace {

constexpr ProtocolKind kProtocols[] = {
    ProtocolKind::kMbt, ProtocolKind::kMbtQ, ProtocolKind::kMbtQm};

/// "x0.35"-style suffix for time-series file names.
std::string formatX(double x) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", x);
  return buf;
}

/// Supervised-sweep point key: "<figure>:<xi>:<pi>:<seed>".
std::string pointKeyFor(const std::string& figureId, std::size_t xi,
                        std::size_t pi, int seed) {
  return figureId + ":" + std::to_string(xi) + ":" + std::to_string(pi) +
         ":" + std::to_string(seed);
}

/// Engine parameters for one sweep point, exactly as the in-process task
/// loop builds them — the supervised child must reproduce them bit for bit.
EngineParams paramsForPoint(const FigureSpec& spec, std::size_t xi,
                            std::size_t pi, int seed) {
  EngineParams params = spec.base;
  params.protocol.kind = kProtocols[pi];
  params.seed = static_cast<std::uint64_t>(seed) * 1000003u;
  spec.apply(params, spec.xs[xi]);
  return params;
}

/// Child mode (--point=KEY): runs exactly one (x, protocol, seed) point —
/// with periodic checkpoints when --point-checkpoint was given — and prints
/// its RESULT line for the supervising parent.
int runFigurePoint(const FigureSpec& spec, const CommonArgs& common) {
  std::size_t xi = 0, pi = 0;
  int seed = 0;
  {
    std::istringstream in(common.pointKey);
    std::string figure, xiText, piText, seedText;
    if (!std::getline(in, figure, ':') || !std::getline(in, xiText, ':') ||
        !std::getline(in, piText, ':') || !std::getline(in, seedText) ||
        figure != spec.id) {
      std::cerr << "bad --point key '" << common.pointKey << "' (expected "
                << spec.id << ":<xi>:<pi>:<seed>)\n";
      return 2;
    }
    xi = static_cast<std::size_t>(std::atoll(xiText.c_str()));
    pi = static_cast<std::size_t>(std::atoll(piText.c_str()));
    seed = std::atoi(seedText.c_str());
    if (xi >= spec.xs.size() || pi >= 3 || seed < 1) {
      std::cerr << "--point key '" << common.pointKey
                << "' is out of range\n";
      return 2;
    }
  }
  const trace::ContactTrace trace =
      spec.makeTrace(spec.xs[xi], static_cast<std::uint64_t>(seed));
  const EngineResult result =
      runWithCheckpoints(trace, paramsForPoint(spec, xi, pi, seed),
                         common.pointCheckpoint, common.checkpointEvery);
  std::cout << formatResultLine(
      common.pointKey,
      {result.delivery.metadataRatio, result.delivery.fileRatio});
  return 0;
}

/// Parent mode (--supervise): every point runs in a child process under a
/// timeout with retry-with-resume; completed points land in the journal and
/// are skipped on re-invocation. Fills the same per-task ratio arrays the
/// in-process loop produces. Returns false when a point exhausted its
/// attempt budget.
bool runSupervised(const FigureSpec& spec, const CommonArgs& common,
                   const char* selfPath, int seeds,
                   std::vector<double>& mdRatio,
                   std::vector<double>& fileRatio) {
  SupervisorOptions options;
  options.journalPath = common.superviseJournal;
  options.pointTimeoutSeconds = common.pointTimeoutSeconds;
  options.maxAttempts = common.maxAttempts;
  SweepJournal journal(options.journalPath);
  journal.load();
  for (const std::string& issue : journal.issues()) {
    std::cerr << "journal replay: " << issue << "\n";
  }
  std::cout << "supervised sweep: journal " << journal.path() << " ("
            << journal.size() << " point(s) already done), timeout "
            << options.pointTimeoutSeconds << " s, " << options.maxAttempts
            << " attempt(s) per point\n";
  const std::size_t total = spec.xs.size() * 3 * static_cast<std::size_t>(seeds);
  std::size_t done = 0;
  for (std::size_t xi = 0; xi < spec.xs.size(); ++xi) {
    for (std::size_t pi = 0; pi < 3; ++pi) {
      for (int seed = 1; seed <= seeds; ++seed) {
        const std::string key = pointKeyFor(spec.id, xi, pi, seed);
        const bool journaled = journal.contains(key);
        std::string checkpoint = common.superviseJournal + "." + key +
                                 ".ckpt";
        for (char& c : checkpoint) {
          if (c == ':') c = '_';
        }
        std::vector<std::string> childArgv = {
            selfPath, "--point=" + key, "--point-checkpoint=" + checkpoint,
            "--checkpoint-every=" + std::to_string(common.checkpointEvery)};
        if (!common.scenarioPath.empty()) {
          childArgv.push_back("--scenario=" + common.scenarioPath);
        }
        std::string error;
        const auto values = superviseOnePoint(options, journal, key,
                                              childArgv, checkpoint, &error);
        if (!values) {
          std::cerr << "supervise: " << error << "\n";
          return false;
        }
        if (values->size() < 2) {
          std::cerr << "supervise: point " << key
                    << " returned a malformed RESULT line\n";
          return false;
        }
        const std::size_t task =
            (xi * 3 + pi) * static_cast<std::size_t>(seeds) +
            static_cast<std::size_t>(seed - 1);
        mdRatio[task] = (*values)[0];
        fileRatio[task] = (*values)[1];
        ++done;
        std::cout << "  [" << done << "/" << total << "] " << key
                  << (journaled ? " (journaled)" : " ok") << "\n";
        // The point finished; its resume checkpoint has no further use.
        std::error_code ec;
        std::filesystem::remove(checkpoint, ec);
      }
    }
  }
  return true;
}

}  // namespace

CommonArgs parseCommonArgs(const std::string& figureId, int defaultSeeds,
                           int argc, char** argv) {
  CommonArgs out;
  out.seeds = defaultSeeds;
  if (const char* env = std::getenv("HDTN_SEEDS")) {
    out.seeds = std::max(1, std::atoi(env));
  }
  out.threads = defaultThreadCount();
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (hdtn::startsWith(arg, "--seeds=")) {
      out.seeds = std::max(1, std::atoi(arg.substr(8).data()));
    } else if (hdtn::startsWith(arg, "--threads=")) {
      out.threads = static_cast<unsigned>(
          std::max(1, std::atoi(arg.substr(10).data())));
    } else if (arg == "--json") {
      out.jsonPath = "BENCH_" + figureId + ".json";
    } else if (hdtn::startsWith(arg, "--json=")) {
      out.jsonPath = std::string(arg.substr(7));
    } else if (arg == "--timeseries") {
      out.timeseriesDir = ".";
    } else if (hdtn::startsWith(arg, "--timeseries=")) {
      out.timeseriesDir = std::string(arg.substr(13));
    } else if (hdtn::startsWith(arg, "--sample-every=")) {
      out.sampleEvery =
          std::max<Duration>(1, std::atoll(arg.substr(15).data()));
    } else if (hdtn::startsWith(arg, "--scenario=")) {
      out.scenarioPath = std::string(arg.substr(11));
    } else if (arg == "--supervise") {
      out.superviseJournal = "BENCH_" + figureId + ".journal";
    } else if (hdtn::startsWith(arg, "--supervise=")) {
      out.superviseJournal = std::string(arg.substr(12));
    } else if (hdtn::startsWith(arg, "--point-timeout=")) {
      out.pointTimeoutSeconds =
          std::max(0.1, std::atof(arg.substr(16).data()));
    } else if (hdtn::startsWith(arg, "--max-attempts=")) {
      out.maxAttempts = std::max(1, std::atoi(arg.substr(15).data()));
    } else if (hdtn::startsWith(arg, "--checkpoint-every=")) {
      out.checkpointEvery =
          std::max<Duration>(1, std::atoll(arg.substr(19).data()));
    } else if (hdtn::startsWith(arg, "--point=")) {
      out.pointKey = std::string(arg.substr(8));
    } else if (hdtn::startsWith(arg, "--point-checkpoint=")) {
      out.pointCheckpoint = std::string(arg.substr(19));
    }
  }
  return out;
}

trace::ContactTrace defaultDieselNet(std::uint64_t seed) {
  trace::DieselNetParams params;
  params.buses = 40;
  params.routes = 8;
  params.days = 20;
  // Thinner than the generator defaults so the delivery curves stay in the
  // informative (unsaturated) range across the sweeps.
  params.sameRouteMeetingsPerDay = 1.4;
  params.connectedRouteMeetingsPerDay = 0.5;
  params.backgroundMeetingsPerDay = 0.03;
  params.seed = seed;
  return trace::generateDieselNet(params);
}

trace::ContactTrace defaultNus(std::uint64_t seed, double attendanceRate) {
  trace::NusParams params;
  params.students = 160;
  params.courses = 32;
  params.coursesPerStudent = 4;
  params.days = 12;
  params.attendanceRate = attendanceRate;
  params.seed = seed;
  return trace::generateNus(params);
}

EngineParams dieselNetBaseParams() {
  EngineParams p;
  p.frequentContactPeriod = trace::kDieselNetFrequentPeriod;
  return p;
}

EngineParams nusBaseParams() {
  EngineParams p;
  p.frequentContactPeriod = trace::kNusFrequentPeriod;
  return p;
}

std::vector<double> accessFractionSweep() {
  return {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9};
}

int runFigure(FigureSpec spec, int argc, char** argv) {
  const CommonArgs common = parseCommonArgs(spec.id, spec.seeds, argc, argv);
  if (!common.scenarioPath.empty()) {
    std::vector<std::string> errors;
    const auto scenario = core::Scenario::fromFile(common.scenarioPath,
                                                   &errors);
    if (!scenario) {
      for (const std::string& error : errors) {
        std::cerr << common.scenarioPath << ": " << error << "\n";
      }
      return 2;
    }
    spec.base = scenario->params;
    std::cout << "scenario: " << scenario->name << " ("
              << common.scenarioPath << ")\n";
  }
  if (!common.pointKey.empty()) return runFigurePoint(spec, common);
  const bool supervised = !common.superviseJournal.empty();
  const int seeds = common.seeds;
  const unsigned threads = common.threads;
  const std::string& jsonPath = common.jsonPath;
  const bool wantTimeseries = !common.timeseriesDir.empty();
  std::cout << "=== " << spec.id << ": " << spec.title << " ===\n"
            << "x-axis: " << spec.xLabel << "; " << seeds
            << " seed(s) per point; protocols: MBT, MBT-Q, MBT-QM; "
            << threads << " thread(s)\n\n";

  const auto startedAt = std::chrono::steady_clock::now();

  const std::size_t points = spec.xs.size();
  std::vector<double> mdRatio(points * 3 * static_cast<std::size_t>(seeds));
  std::vector<double> fileRatio(mdRatio.size());
  std::vector<obs::TimeSeries> tsSlots(
      wantTimeseries && !supervised ? points * 3 : 0);
  if (supervised) {
    // Every point runs in a child process (crash/timeout isolation); the
    // children generate their own traces, so nothing is materialized here.
    if (wantTimeseries) {
      std::cout << "--timeseries is not supported under --supervise; "
                   "skipping time-series output\n";
    }
    if (!runSupervised(spec, common, argv[0], seeds, mdRatio, fileRatio)) {
      return 1;
    }
  } else {
  // Traces are shared read-only across simulation tasks, so they are
  // materialized first (in parallel — generation is itself a measurable
  // slice of the wall clock), keyed by (seed, x-if-relevant).
  std::map<std::pair<int, int>, trace::ContactTrace> traceCache;
  for (int seed = 1; seed <= seeds; ++seed) {
    if (spec.traceDependsOnX) {
      for (std::size_t xi = 0; xi < spec.xs.size(); ++xi) {
        traceCache.try_emplace({seed, static_cast<int>(xi)});
      }
    } else {
      traceCache.try_emplace({seed, -1});
    }
  }
  {
    std::vector<std::map<std::pair<int, int>,
                         trace::ContactTrace>::iterator> slots;
    for (auto it = traceCache.begin(); it != traceCache.end(); ++it) {
      slots.push_back(it);
    }
    parallelFor(slots.size(), threads, [&](std::size_t i) {
      const auto [seed, xKey] = slots[i]->first;
      const double x = xKey < 0 ? spec.xs.front()
                                : spec.xs[static_cast<std::size_t>(xKey)];
      slots[i]->second =
          spec.makeTrace(x, static_cast<std::uint64_t>(seed));
    });
  }
  const auto traceFor = [&](std::size_t xi,
                            int seed) -> const trace::ContactTrace& {
    const int xKey = spec.traceDependsOnX ? static_cast<int>(xi) : -1;
    return traceCache.at({seed, xKey});
  };

  // One task per (x, protocol, seed); every task writes its own slot, so the
  // report below is identical for any thread count. Under --timeseries the
  // seed-1 run of each point goes through the sampled stepper instead — the
  // final result is byte-identical to runSimulation, so the averages are
  // unchanged — and its samples land in a per-point slot.
  parallelFor(mdRatio.size(), threads, [&](std::size_t task) {
    const std::size_t xi = task / (3 * static_cast<std::size_t>(seeds));
    const std::size_t rest = task % (3 * static_cast<std::size_t>(seeds));
    const std::size_t pi = rest / static_cast<std::size_t>(seeds);
    const int seed = static_cast<int>(rest % static_cast<std::size_t>(seeds)) + 1;
    const EngineParams params = paramsForPoint(spec, xi, pi, seed);
    EngineResult result;
    if (wantTimeseries && seed == 1) {
      core::Engine engine(traceFor(xi, seed), params);
      result = obs::runSampled(engine, common.sampleEvery,
                               tsSlots[xi * 3 + pi]);
    } else {
      result = core::runSimulation(traceFor(xi, seed), params);
    }
    mdRatio[task] = result.delivery.metadataRatio;
    fileRatio[task] = result.delivery.fileRatio;
  });
  }  // !supervised

  if (wantTimeseries && !supervised) {
    std::error_code ec;
    std::filesystem::create_directories(common.timeseriesDir, ec);
    for (std::size_t xi = 0; xi < points; ++xi) {
      for (std::size_t pi = 0; pi < 3; ++pi) {
        const std::filesystem::path path =
            std::filesystem::path(common.timeseriesDir) /
            ("TS_" + spec.id + "_" +
             std::string(core::protocolName(kProtocols[pi])) + "_x" +
             formatX(spec.xs[xi]) + ".csv");
        std::ofstream csv(path);
        if (!csv) {
          std::cerr << "cannot write " << path.string() << "\n";
          return 1;
        }
        tsSlots[xi * 3 + pi].writeCsv(csv);
      }
    }
    std::cout << "time series (" << points * 3 << " files, seed 1, every "
              << common.sampleEvery << " s) written to "
              << common.timeseriesDir << "\n\n";
  }

  const double wallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    startedAt)
          .count();

  // series[protocol] -> per-x mean ratios.
  std::vector<std::vector<double>> metadataSeries(3), fileSeries(3);
  Table table({spec.xLabel, "MBT md", "MBT-Q md", "MBT-QM md", "MBT file",
               "MBT-Q file", "MBT-QM file"});
  for (std::size_t xi = 0; xi < points; ++xi) {
    std::vector<double> mdMeans(3, 0.0), fileMeans(3, 0.0);
    for (std::size_t pi = 0; pi < 3; ++pi) {
      double mdSum = 0.0, fileSum = 0.0;
      for (int seed = 1; seed <= seeds; ++seed) {
        const std::size_t task =
            (xi * 3 + pi) * static_cast<std::size_t>(seeds) +
            static_cast<std::size_t>(seed - 1);
        mdSum += mdRatio[task];
        fileSum += fileRatio[task];
      }
      mdMeans[pi] = mdSum / seeds;
      fileMeans[pi] = fileSum / seeds;
      metadataSeries[pi].push_back(mdMeans[pi]);
      fileSeries[pi].push_back(fileMeans[pi]);
    }
    table.addRow({spec.xs[xi], mdMeans[0], mdMeans[1], mdMeans[2],
                  fileMeans[0], fileMeans[1], fileMeans[2]});
  }

  table.writeAligned(std::cout);
  std::cout << "\nCSV:\n";
  table.writeCsv(std::cout);
  std::cout << "\n";

  const char glyphs[3] = {'*', 'o', '.'};
  AsciiChart mdChart(spec.id + ": metadata delivery ratio vs " + spec.xLabel,
                     spec.xs);
  AsciiChart fileChart(spec.id + ": file delivery ratio vs " + spec.xLabel,
                       spec.xs);
  for (std::size_t pi = 0; pi < 3; ++pi) {
    const char* name = core::protocolName(kProtocols[pi]);
    mdChart.addSeries({name, glyphs[pi], metadataSeries[pi]});
    fileChart.addSeries({name, glyphs[pi], fileSeries[pi]});
  }
  std::cout << mdChart.render() << "\n" << fileChart.render() << std::endl;
  std::cout << "wall-clock: " << wallSeconds << " s (" << threads
            << " thread(s), " << seeds << " seed(s))" << std::endl;

  if (!jsonPath.empty()) {
    std::ofstream json(jsonPath);
    if (!json) {
      std::cerr << "cannot write " << jsonPath << "\n";
      return 1;
    }
    json << "{\n"
         << "  \"figure\": \"" << spec.id << "\",\n"
         << "  \"title\": \"" << spec.title << "\",\n"
         << "  \"x_label\": \"" << spec.xLabel << "\",\n"
         << "  \"seeds\": " << seeds << ",\n"
         << "  \"threads\": " << threads << ",\n"
         << "  \"wall_seconds\": " << wallSeconds << ",\n"
         << "  \"series\": [\n";
    for (std::size_t pi = 0; pi < 3; ++pi) {
      json << "    {\"protocol\": \"" << core::protocolName(kProtocols[pi])
           << "\", \"points\": [";
      for (std::size_t xi = 0; xi < points; ++xi) {
        json << (xi == 0 ? "" : ", ") << "{\"x\": " << spec.xs[xi]
             << ", \"metadata_ratio\": " << metadataSeries[pi][xi]
             << ", \"file_ratio\": " << fileSeries[pi][xi] << "}";
      }
      json << "]}" << (pi + 1 < 3 ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::cout << "json written to " << jsonPath << std::endl;
  }
  return 0;
}

}  // namespace hdtn::bench
