// Section V capacity analysis: per-node transmission capacity of
// broadcast-based vs pairwise file download as clique size (node density)
// grows. Reproduces the paper's claim that broadcast capacity *increases*
// with density toward 1 while pairwise capacity decays as 1/n, both in
// closed form and with the slotted contention simulator.
#include <iostream>
#include <vector>

#include "src/core/capacity.hpp"
#include "src/util/ascii_chart.hpp"
#include "src/util/csv.hpp"

int main() {
  using namespace hdtn;
  std::cout << "=== capacity: per-node capacity vs clique size (Sec. V) ===\n"
            << "broadcast: scheduled, one sender per slot, n-1 receivers\n"
            << "pairwise:  slotted random access at the optimal attempt "
               "probability 1/n, one receiver per success\n\n";

  const std::vector<int> sizes = {2,  3,  4,  5,  6,  8, 10,
                                  15, 20, 30, 40, 50};
  Table table({"clique_size", "broadcast_analytic", "broadcast_sim",
               "pairwise_analytic", "pairwise_sim", "pairwise_collisions"});
  std::vector<double> xs;
  std::vector<double> broadcastSeries, pairwiseSeries;
  for (int n : sizes) {
    core::ContentionParams params;
    params.nodes = n;
    params.slots = 200000;
    params.attemptProbability = core::optimalAttemptProbability(n);
    params.seed = 7;
    const auto pairwise = core::simulatePairwiseContention(params);
    const auto broadcast = core::simulateBroadcastSchedule(params);
    table.addRow({static_cast<double>(n), core::analyticBroadcastCapacity(n),
                  broadcast.perNodeGoodput, core::analyticPairwiseCapacity(n),
                  pairwise.perNodeGoodput, pairwise.collisionFraction});
    xs.push_back(n);
    broadcastSeries.push_back(broadcast.perNodeGoodput);
    pairwiseSeries.push_back(pairwise.perNodeGoodput);
  }
  table.writeAligned(std::cout);
  std::cout << "\nCSV:\n";
  table.writeCsv(std::cout);
  std::cout << "\n";

  AsciiChart chart("per-node capacity (fraction of channel rate W)", xs);
  chart.addSeries({"broadcast", '*', broadcastSeries});
  chart.addSeries({"pairwise", 'o', pairwiseSeries});
  chart.setYRange(0.0, 1.05);
  std::cout << chart.render() << std::endl;

  // Note: the random-access pairwise simulation pays an extra contention
  // factor (~1/e at the optimal attempt rate) on top of the 1/n analytic
  // bound — the paper's point, only stronger.
  return 0;
}
