// Figure 2(a): delivery ratios vs percentage of Internet-access nodes,
// UMassDieselNet-style trace.
#include "bench/harness.hpp"

int main(int argc, char** argv) {
  using namespace hdtn;
  bench::FigureSpec spec;
  spec.id = "fig2a";
  spec.title = "DieselNet: delivery ratio vs % Internet-access nodes";
  spec.xLabel = "access_fraction";
  spec.xs = bench::accessFractionSweep();
  spec.makeTrace = [](double, std::uint64_t seed) {
    return bench::defaultDieselNet(seed);
  };
  spec.base = bench::dieselNetBaseParams();
  spec.apply = [](core::EngineParams& p, double x) {
    p.internetAccessFraction = x;
  };
  return bench::runFigure(std::move(spec), argc, argv);
}
