// fig3f: NUS: delivery ratio vs class attendance rate. The trace itself
// changes with x: lower attendance means smaller classroom cliques and
// fewer contact opportunities.
#include "bench/harness.hpp"

int main(int argc, char** argv) {
  using namespace hdtn;
  bench::FigureSpec spec;
  spec.id = "fig3f";
  spec.title = "NUS: delivery ratio vs attendance rate";
  spec.xLabel = "attendance_rate";
  spec.xs = {0.5, 0.6, 0.7, 0.8, 0.9, 1.0};
  spec.traceDependsOnX = true;
  spec.makeTrace = [](double x, std::uint64_t seed) {
    return bench::defaultNus(seed, x);
  };
  spec.base = bench::nusBaseParams();
  spec.apply = [](core::EngineParams&, double) {};
  return bench::runFigure(std::move(spec), argc, argv);
}
