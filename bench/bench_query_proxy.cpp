// Ablation A3: which cooperation mechanism buys what.
//
// MBT layers two cooperative mechanisms on top of MBT-Q:
//   (1) frequent-contact query proxying (peers collect metadata for you);
//   (2) access nodes fetching files peers advertised as wanted.
// This ablation toggles them independently on the DieselNet-style trace:
//   full MBT / MBT without peer-request fetching / MBT-Q (no proxying) /
//   MBT-Q without peer-request fetching.
#include <iostream>
#include <vector>

#include "bench/harness.hpp"
#include "src/core/protocol.hpp"
#include "src/util/ascii_chart.hpp"
#include "src/util/csv.hpp"

int main() {
  using namespace hdtn;
  std::cout << "=== query_proxy: cooperation-mechanism ablation "
               "(DieselNet trace) ===\n\n";

  const std::vector<double> fractions = {0.1, 0.3, 0.5, 0.7, 0.9};
  const int seeds = 3;

  struct Variant {
    const char* name;
    core::ProtocolKind kind;
    bool peerFetch;
  };
  const Variant variants[] = {
      {"MBT full", core::ProtocolKind::kMbt, true},
      {"MBT, no peer fetch", core::ProtocolKind::kMbt, false},
      {"MBT-Q", core::ProtocolKind::kMbtQ, true},
      {"MBT-Q, no peer fetch", core::ProtocolKind::kMbtQ, false},
  };

  Table table({"access_fraction", "MBT full", "MBT no-fetch", "MBT-Q",
               "MBT-Q no-fetch"});
  std::vector<std::vector<double>> series(4);
  for (double fraction : fractions) {
    std::vector<double> means;
    for (const Variant& variant : variants) {
      double sum = 0.0;
      for (int seed = 1; seed <= seeds; ++seed) {
        const auto trace =
            bench::defaultDieselNet(static_cast<std::uint64_t>(seed));
        core::EngineParams params = bench::dieselNetBaseParams();
        params.protocol.kind = variant.kind;
        params.accessFetchesPeerRequests = variant.peerFetch;
        params.internetAccessFraction = fraction;
        params.seed = static_cast<std::uint64_t>(seed) * 1000003u;
        sum += core::runSimulation(trace, params).delivery.fileRatio;
      }
      means.push_back(sum / seeds);
    }
    table.addRow(
        {fraction, means[0], means[1], means[2], means[3]});
    for (std::size_t i = 0; i < 4; ++i) series[i].push_back(means[i]);
  }
  table.writeAligned(std::cout);
  std::cout << "\nCSV:\n";
  table.writeCsv(std::cout);
  std::cout << "\n";

  AsciiChart chart("file delivery ratio vs access fraction", fractions);
  const char glyphs[4] = {'*', '+', 'o', '.'};
  for (std::size_t i = 0; i < 4; ++i) {
    chart.addSeries({variants[i].name, glyphs[i], series[i]});
  }
  std::cout << chart.render() << std::endl;
  return 0;
}
