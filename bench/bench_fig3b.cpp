// fig3b: NUS: delivery ratio vs new files per day.
#include "bench/harness.hpp"

int main(int argc, char** argv) {
  using namespace hdtn;
  bench::FigureSpec spec;
  spec.id = "fig3b";
  spec.title = "NUS: delivery ratio vs new files per day";
  spec.xLabel = "files_per_day";
  spec.xs = {10, 20, 40, 60, 80, 100};
  spec.makeTrace = [](double, std::uint64_t seed) {
    return bench::defaultNus(seed);
  };
  spec.base = bench::nusBaseParams();
  spec.apply = [](core::EngineParams& p, double x) {
    p.newFilesPerDay = static_cast<int>(x);
  };
  return bench::runFigure(std::move(spec), argc, argv);
}
