// Ablation A7: popularity push vs rarest-first push.
//
// The paper's download phase 2 pushes pieces in decreasing popularity;
// BitTorrent's classic wisdom is rarest-first (maximize swarm diversity).
// In a DTN the trade-off shifts: popularity push front-loads the files most
// queries want, while rarest-first spreads the tail. This ablation sweeps
// the file budget on both trace families under MBT.
#include <iostream>
#include <vector>

#include "bench/harness.hpp"
#include "src/core/protocol.hpp"
#include "src/util/ascii_chart.hpp"
#include "src/util/csv.hpp"

int main() {
  using namespace hdtn;
  std::cout << "=== push_order: popularity vs rarest-first file push "
               "(MBT) ===\n\n";

  const std::vector<double> budgets = {1, 2, 3, 5, 8};
  const int seeds = 3;

  struct Family {
    const char* name;
    bool diesel;
  };
  for (const Family& family :
       {Family{"dieselnet", true}, Family{"nus", false}}) {
    Table table({"files_per_contact", "popularity file", "rarest file",
                 "popularity md", "rarest md"});
    std::vector<double> popularitySeries, rarestSeries;
    for (double budget : budgets) {
      double sums[4] = {0, 0, 0, 0};
      for (int seed = 1; seed <= seeds; ++seed) {
        const auto trace =
            family.diesel
                ? bench::defaultDieselNet(static_cast<std::uint64_t>(seed))
                : bench::defaultNus(static_cast<std::uint64_t>(seed));
        for (int mode = 0; mode < 2; ++mode) {
          core::EngineParams params = family.diesel
                                          ? bench::dieselNetBaseParams()
                                          : bench::nusBaseParams();
          params.protocol.kind = core::ProtocolKind::kMbt;
          params.filesPerContact = static_cast<int>(budget);
          params.pushOrder = mode == 0 ? core::PushOrder::kPopularity
                                       : core::PushOrder::kRarestFirst;
          params.seed = static_cast<std::uint64_t>(seed) * 1000003u;
          const auto result = core::runSimulation(trace, params);
          sums[2 * mode + 0] += result.delivery.fileRatio;
          sums[2 * mode + 1] += result.delivery.metadataRatio;
        }
      }
      for (double& s : sums) s /= seeds;
      table.addRow({budget, sums[0], sums[2], sums[1], sums[3]});
      popularitySeries.push_back(sums[0]);
      rarestSeries.push_back(sums[2]);
    }
    std::cout << "--- " << family.name << " ---\n";
    table.writeAligned(std::cout);
    std::cout << "\nCSV:\n";
    table.writeCsv(std::cout);
    std::cout << "\n";
    AsciiChart chart(
        std::string(family.name) + ": file delivery vs files per contact",
        budgets);
    chart.addSeries({"popularity push (paper)", '*', popularitySeries});
    chart.addSeries({"rarest-first push", 'o', rarestSeries});
    std::cout << chart.render() << "\n";
  }
  return 0;
}
