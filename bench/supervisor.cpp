#include "bench/supervisor.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "src/core/checkpoint.hpp"
#include "src/service/exec.hpp"
#include "src/util/serialize.hpp"

namespace hdtn::bench {

namespace {

void sleepSeconds(double seconds) {
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

/// Parses one journal line into (key, values). Returns false with *why set
/// when the line is not a well-formed entry.
bool parseJournalLine(const std::string& line, std::string* key,
                      std::vector<double>* values, std::string* why) {
  // {"point":"KEY","values":[v1,v2]} — parsed structurally, not with a
  // JSON library.
  const std::string pointTag = "\"point\":\"";
  const std::string valuesTag = "\"values\":[";
  const std::size_t p = line.find(pointTag);
  const std::size_t v = line.find(valuesTag);
  if (p == std::string::npos || v == std::string::npos) {
    *why = "missing point/values fields";
    return false;
  }
  const std::size_t keyStart = p + pointTag.size();
  const std::size_t keyEnd = line.find('"', keyStart);
  if (keyEnd == std::string::npos) {
    *why = "unterminated point key";
    return false;
  }
  const std::size_t valuesStart = v + valuesTag.size();
  const std::size_t valuesEnd = line.find(']', valuesStart);
  if (valuesEnd == std::string::npos) {
    *why = "unterminated values array";
    return false;
  }
  std::vector<double> parsed;
  std::stringstream nums(line.substr(valuesStart, valuesEnd - valuesStart));
  std::string item;
  while (std::getline(nums, item, ',')) {
    char* end = nullptr;
    const double value = std::strtod(item.c_str(), &end);
    if (end == item.c_str()) {
      *why = "unparseable value '" + item + "'";
      return false;
    }
    parsed.push_back(value);
  }
  if (parsed.empty()) {
    *why = "empty values array";
    return false;
  }
  *key = line.substr(keyStart, keyEnd - keyStart);
  *values = std::move(parsed);
  return true;
}

}  // namespace

SubprocessResult runSubprocess(const std::vector<std::string>& argv,
                               double timeoutSeconds) {
  const service::ChildOutcome run = service::runChild(argv, timeoutSeconds);
  SubprocessResult result;
  result.output = run.output;
  switch (run.cause) {
    case service::ExitCause::kCleanExit:
      result.exitCode = run.exitCode;
      break;
    case service::ExitCause::kSignaled:
      result.signaled = true;
      break;
    case service::ExitCause::kTimedOut:
      // The deadline kill is a SIGKILL, so a timed-out child is also a
      // signaled one — callers historically check either flag.
      result.timedOut = true;
      result.signaled = true;
      break;
  }
  return result;
}

void SweepJournal::load() {
  done_.clear();
  issues_.clear();
  std::ifstream in(path_, std::ios::binary);
  if (!in) return;
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  const bool endsWithNewline =
      !contents.empty() && contents.back() == '\n';
  std::istringstream lines(contents);
  std::string line;
  int lineNumber = 0;
  while (std::getline(lines, line)) {
    ++lineNumber;
    if (line.empty()) continue;
    std::string key;
    std::vector<double> values;
    std::string why;
    if (parseJournalLine(line, &key, &values, &why)) {
      done_[key] = std::move(values);
      continue;
    }
    const bool lastLine = lines.peek() == EOF;
    if (lastLine && !endsWithNewline) {
      // A crash mid-append leaves exactly one torn line, always at the
      // tail: drop it, the point simply re-runs.
      issues_.push_back("dropped truncated final line " +
                        std::to_string(lineNumber) +
                        " (crash mid-append): " + why);
    } else {
      issues_.push_back("line " + std::to_string(lineNumber) +
                        ": malformed entry (" + why + ")");
    }
  }
}

const std::vector<double>* SweepJournal::values(const std::string& key) const {
  const auto it = done_.find(key);
  return it == done_.end() ? nullptr : &it->second;
}

void SweepJournal::record(const std::string& key,
                          const std::vector<double>& values) {
  done_[key] = values;
  std::ofstream out(path_, std::ios::app);
  out << "{\"point\":\"" << key << "\",\"values\":[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", values[i]);
    out << (i == 0 ? "" : ",") << buf;
  }
  out << "]}\n" << std::flush;
}

std::string formatResultLine(const std::string& key,
                             const std::vector<double>& values) {
  std::string line = "RESULT " + key;
  for (const double value : values) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), " %.17g", value);
    line += buf;
  }
  line += "\n";
  return line;
}

bool parseResultLine(const std::string& output, const std::string& key,
                     std::vector<double>* values) {
  std::istringstream lines(output);
  std::string line;
  const std::string prefix = "RESULT " + key + " ";
  while (std::getline(lines, line)) {
    if (line.compare(0, prefix.size(), prefix) != 0) continue;
    std::istringstream nums(line.substr(prefix.size()));
    std::vector<double> parsed;
    double value = 0.0;
    while (nums >> value) parsed.push_back(value);
    if (parsed.empty()) return false;
    *values = std::move(parsed);
    return true;
  }
  return false;
}

std::optional<std::vector<double>> superviseOnePoint(
    const SupervisorOptions& options, SweepJournal& journal,
    const std::string& key, const std::vector<std::string>& childArgv,
    const std::string& checkpointPath, std::string* error) {
  if (const std::vector<double>* recorded = journal.values(key)) {
    return *recorded;
  }
  service::RetryPolicy policy;
  policy.maxAttempts = options.maxAttempts;
  policy.backoffBaseSeconds = options.backoffBaseSeconds;
  std::string lastFailure = "never attempted";
  for (int attempt = 1; attempt <= options.maxAttempts; ++attempt) {
    if (attempt > 1) sleepSeconds(service::backoffSeconds(policy, attempt));
    if (attempt == options.maxAttempts && !checkpointPath.empty()) {
      // Last chance: if the checkpoint itself is what keeps killing the
      // child, a cold start is better than burning the final attempt on it.
      std::error_code ec;
      std::filesystem::remove(checkpointPath, ec);
    }
    const service::ChildOutcome run =
        service::runChild(childArgv, options.pointTimeoutSeconds);
    const service::RetryDecision decision =
        service::classifyOutcome(run, policy);
    std::vector<double> values;
    if (decision == service::RetryDecision::kSuccess &&
        parseResultLine(run.output, key, &values)) {
      journal.record(key, values);
      return values;
    }
    const std::string what =
        service::describeOutcome(run, options.pointTimeoutSeconds);
    if (decision == service::RetryDecision::kFailFast) {
      // Deterministic validation failure: re-running the same command
      // cannot change the answer, so don't burn the remaining attempts.
      if (error != nullptr) {
        *error = "point " + key + ": validation failure (" + what +
                 "); not retried";
      }
      return std::nullopt;
    }
    lastFailure = decision == service::RetryDecision::kSuccess
                      ? "no RESULT line in output"
                      : what;
  }
  if (error != nullptr) {
    *error = "point " + key + " failed after " +
             std::to_string(options.maxAttempts) +
             " attempt(s); last failure: " + lastFailure;
  }
  return std::nullopt;
}

core::EngineResult runWithCheckpoints(const trace::ContactTrace& trace,
                                      const core::EngineParams& params,
                                      const std::string& path,
                                      Duration every) {
  core::Engine engine(trace, params);
  SimTime next = every;
  if (!path.empty() && std::filesystem::exists(path)) {
    try {
      const core::CheckpointInfo info = core::readCheckpointInfo(path);
      Deserializer extra(info.extra);
      const SimTime savedNext = extra.i64();
      engine.restoreCheckpoint(path);
      next = savedNext;
    } catch (const std::exception&) {
      // Unreadable or mismatched checkpoint: start cold; the retry budget
      // already covers the recomputation.
      std::error_code ec;
      std::filesystem::remove(path, ec);
    }
  }
  const SimTime end = engine.endTime();
  while (!path.empty() && next < end) {
    engine.runUntil(next);
    next += every;
    Serializer extra;
    extra.i64(next);
    engine.saveCheckpoint(path, extra.bytes());
  }
  return engine.finish();
}

}  // namespace hdtn::bench
