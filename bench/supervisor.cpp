#include "bench/supervisor.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "src/core/checkpoint.hpp"
#include "src/util/serialize.hpp"

namespace hdtn::bench {

namespace {

void sleepSeconds(double seconds) {
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

}  // namespace

SubprocessResult runSubprocess(const std::vector<std::string>& argv,
                               double timeoutSeconds) {
  SubprocessResult result;
  int pipeFds[2];
  if (pipe(pipeFds) != 0) return result;

  std::vector<char*> args;
  args.reserve(argv.size() + 1);
  for (const std::string& a : argv) args.push_back(const_cast<char*>(a.c_str()));
  args.push_back(nullptr);

  const pid_t pid = fork();
  if (pid < 0) {
    close(pipeFds[0]);
    close(pipeFds[1]);
    return result;
  }
  if (pid == 0) {
    // Child: stdout → pipe, then exec. _exit(127) on exec failure keeps the
    // failure visible as a distinct exit code.
    close(pipeFds[0]);
    dup2(pipeFds[1], STDOUT_FILENO);
    close(pipeFds[1]);
    execvp(args[0], args.data());
    _exit(127);
  }
  close(pipeFds[1]);
  // Non-blocking reads so the poll loop can watch the clock while draining
  // the pipe (a child that fills the pipe buffer would otherwise deadlock
  // against a parent that only reads after waitpid).
  fcntl(pipeFds[0], F_SETFL, O_NONBLOCK);

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeoutSeconds);
  char buf[4096];
  int status = 0;
  bool exited = false;
  while (!exited) {
    ssize_t n;
    while ((n = read(pipeFds[0], buf, sizeof(buf))) > 0) {
      result.output.append(buf, static_cast<std::size_t>(n));
    }
    const pid_t waited = waitpid(pid, &status, WNOHANG);
    if (waited == pid) {
      exited = true;
      break;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      result.timedOut = true;
      kill(pid, SIGKILL);
      waitpid(pid, &status, 0);
      exited = true;
      break;
    }
    sleepSeconds(0.01);
  }
  // Drain whatever the child managed to write before it stopped.
  ssize_t n;
  while ((n = read(pipeFds[0], buf, sizeof(buf))) > 0) {
    result.output.append(buf, static_cast<std::size_t>(n));
  }
  close(pipeFds[0]);
  if (WIFEXITED(status)) {
    result.exitCode = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    result.signaled = true;
  }
  return result;
}

void SweepJournal::load() {
  done_.clear();
  std::ifstream in(path_);
  if (!in) return;
  std::string line;
  while (std::getline(in, line)) {
    // {"point":"KEY","values":[v1,v2]} — parsed structurally, not with a
    // JSON library; malformed (half-written) lines are skipped.
    const std::string pointTag = "\"point\":\"";
    const std::string valuesTag = "\"values\":[";
    const std::size_t p = line.find(pointTag);
    const std::size_t v = line.find(valuesTag);
    if (p == std::string::npos || v == std::string::npos) continue;
    const std::size_t keyStart = p + pointTag.size();
    const std::size_t keyEnd = line.find('"', keyStart);
    if (keyEnd == std::string::npos) continue;
    const std::size_t valuesStart = v + valuesTag.size();
    const std::size_t valuesEnd = line.find(']', valuesStart);
    if (valuesEnd == std::string::npos) continue;
    std::vector<double> values;
    std::stringstream nums(
        line.substr(valuesStart, valuesEnd - valuesStart));
    std::string item;
    bool ok = true;
    while (std::getline(nums, item, ',')) {
      char* end = nullptr;
      const double value = std::strtod(item.c_str(), &end);
      if (end == item.c_str()) {
        ok = false;
        break;
      }
      values.push_back(value);
    }
    if (!ok || values.empty()) continue;
    done_[line.substr(keyStart, keyEnd - keyStart)] = std::move(values);
  }
}

const std::vector<double>* SweepJournal::values(const std::string& key) const {
  const auto it = done_.find(key);
  return it == done_.end() ? nullptr : &it->second;
}

void SweepJournal::record(const std::string& key,
                          const std::vector<double>& values) {
  done_[key] = values;
  std::ofstream out(path_, std::ios::app);
  out << "{\"point\":\"" << key << "\",\"values\":[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", values[i]);
    out << (i == 0 ? "" : ",") << buf;
  }
  out << "]}\n" << std::flush;
}

std::string formatResultLine(const std::string& key,
                             const std::vector<double>& values) {
  std::string line = "RESULT " + key;
  for (const double value : values) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), " %.17g", value);
    line += buf;
  }
  line += "\n";
  return line;
}

bool parseResultLine(const std::string& output, const std::string& key,
                     std::vector<double>* values) {
  std::istringstream lines(output);
  std::string line;
  const std::string prefix = "RESULT " + key + " ";
  while (std::getline(lines, line)) {
    if (line.compare(0, prefix.size(), prefix) != 0) continue;
    std::istringstream nums(line.substr(prefix.size()));
    std::vector<double> parsed;
    double value = 0.0;
    while (nums >> value) parsed.push_back(value);
    if (parsed.empty()) return false;
    *values = std::move(parsed);
    return true;
  }
  return false;
}

std::optional<std::vector<double>> superviseOnePoint(
    const SupervisorOptions& options, SweepJournal& journal,
    const std::string& key, const std::vector<std::string>& childArgv,
    const std::string& checkpointPath, std::string* error) {
  if (const std::vector<double>* recorded = journal.values(key)) {
    return *recorded;
  }
  std::string lastFailure = "never attempted";
  for (int attempt = 1; attempt <= options.maxAttempts; ++attempt) {
    if (attempt > 1) {
      sleepSeconds(options.backoffBaseSeconds *
                   static_cast<double>(1 << (attempt - 2)));
    }
    if (attempt == options.maxAttempts && !checkpointPath.empty()) {
      // Last chance: if the checkpoint itself is what keeps killing the
      // child, a cold start is better than burning the final attempt on it.
      std::error_code ec;
      std::filesystem::remove(checkpointPath, ec);
    }
    const SubprocessResult run =
        runSubprocess(childArgv, options.pointTimeoutSeconds);
    std::vector<double> values;
    if (run.exitCode == 0 && parseResultLine(run.output, key, &values)) {
      journal.record(key, values);
      return values;
    }
    if (run.timedOut) {
      lastFailure = "timed out after " +
                    std::to_string(options.pointTimeoutSeconds) + " s";
    } else if (run.signaled) {
      lastFailure = "killed by a signal";
    } else if (run.exitCode != 0) {
      lastFailure = "exit code " + std::to_string(run.exitCode);
    } else {
      lastFailure = "no RESULT line in output";
    }
  }
  if (error != nullptr) {
    *error = "point " + key + " failed after " +
             std::to_string(options.maxAttempts) +
             " attempt(s); last failure: " + lastFailure;
  }
  return std::nullopt;
}

core::EngineResult runWithCheckpoints(const trace::ContactTrace& trace,
                                      const core::EngineParams& params,
                                      const std::string& path,
                                      Duration every) {
  core::Engine engine(trace, params);
  SimTime next = every;
  if (!path.empty() && std::filesystem::exists(path)) {
    try {
      const core::CheckpointInfo info = core::readCheckpointInfo(path);
      Deserializer extra(info.extra);
      const SimTime savedNext = extra.i64();
      engine.restoreCheckpoint(path);
      next = savedNext;
    } catch (const std::exception&) {
      // Unreadable or mismatched checkpoint: start cold; the retry budget
      // already covers the recomputation.
      std::error_code ec;
      std::filesystem::remove(path, ec);
    }
  }
  const SimTime end = engine.endTime();
  while (!path.empty() && next < end) {
    engine.runUntil(next);
    next += every;
    Serializer extra;
    extra.i64(next);
    engine.saveCheckpoint(path, extra.bytes());
  }
  return engine.finish();
}

}  // namespace hdtn::bench
